"""Adaptive stress-aware allocation (the paper's future-work variant).

Section VI: "As a future work, we will implement the improved rotation
techniques and use run-time aging information to adapt the allocation
strategy dynamically." This policy does exactly that: it reads the
accumulated per-FU stress from the :class:`UtilizationTracker` (the
run-time aging information an aging sensor would provide) and chooses
the pivot that minimises the resulting worst-case stress.

A full ``W x L`` pivot search per launch is expensive, so the policy
re-optimises every ``interval`` launches and follows the fabric-covering
snake in between — a realistic duty cycle for a hardware controller.

The search itself is vectorized: every candidate pattern pivot's
stressed footprint is a row of one integer index matrix, and the
min-max selection happens in numpy. The batched ``next_pivots`` hook
replays the launch-by-launch stress accrual on a working copy of the
counters, so a whole batch is bit-identical to the scalar loop it
replaces.
"""

from __future__ import annotations

import numpy as np

from repro.cgra.configuration import VirtualConfiguration
from repro.cgra.fabric import FabricGeometry
from repro.core.patterns import movement_pattern
from repro.core.policy import (
    AllocationPolicy,
    candidate_footprints,
    min_stress_index,
    register_policy,
)


@register_policy
class StressAwarePolicy(AllocationPolicy):
    """Minimise worst-case accumulated stress with periodic re-search.

    Args:
        interval: launches between full pivot searches (1 = search on
            every launch).
        pattern: fallback movement pattern between searches.
        sensor: optional :class:`repro.aging.sensor.SensorArray`; when
            given, the pivot search sees quantized/sampled readings
            instead of oracle stress counters.
    """

    name = "stress_aware"

    def __init__(
        self,
        interval: int = 16,
        pattern: str = "snake",
        sensor=None,
    ) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self.pattern_name = pattern
        self.sensor = sensor
        self._pattern: list[tuple[int, int]] = []
        self._pattern_array = np.empty((0, 2), dtype=np.int64)
        self._pattern_index: dict[tuple[int, int], int] = {}
        self._position = 0
        self._launches = 0

    def bind(self, geometry: FabricGeometry) -> None:
        super().bind(geometry)
        self._pattern = movement_pattern(
            self.pattern_name, geometry.rows, geometry.cols
        )
        self._pattern_array = np.asarray(self._pattern, dtype=np.int64)
        self._pattern_index = {
            pivot: index for index, pivot in enumerate(self._pattern)
        }
        self._position = 0
        self._launches = 0
        if self.sensor is not None:
            self.sensor.reset()

    def next_pivot(self, config: VirtualConfiguration, tracker) -> tuple[int, int]:
        self._launches += 1
        if self._launches % self.interval == 1 or self.interval == 1:
            pivot = self._best_pivot(config, tracker.execution_counts)
            self._position = self._pattern_index[pivot]
            return pivot
        self._position = (self._position + 1) % len(self._pattern)
        return self._pattern[self._position]

    def next_pivots(
        self, config: VirtualConfiguration, tracker, count: int
    ) -> np.ndarray:
        """Batch-exact pivot run: simulates the stress the batch's own
        launches accrue on a working copy of the counters, so search
        launches inside the batch see exactly the counter state the
        scalar loop would have shown them.

        The counter copy and the per-pattern footprint matrix are only
        materialised on the first *search* launch of the run — pure
        snake-following runs (the common case away from re-search
        boundaries, and every ``count == 1`` non-search launch from the
        scalar wrapper) stay O(1).
        """
        pivots = np.empty((count, 2), dtype=np.int64)
        counts = None
        flat_counts = None
        footprints = None
        pending: list[int] = []  # positions launched before first search
        for index in range(count):
            self._launches += 1
            if self._launches % self.interval == 1 or self.interval == 1:
                if footprints is None:
                    footprints = candidate_footprints(
                        config, self._pattern_array, self.geometry
                    )
                    counts = np.array(tracker.execution_counts, dtype=np.int64)
                    flat_counts = counts.reshape(-1)
                    for position in pending:
                        flat_counts[footprints[position]] += 1
                    pending.clear()
                self._position = min_stress_index(
                    self._visible_counts(counts).reshape(-1)[footprints]
                )
            else:
                self._position = (self._position + 1) % len(self._pattern)
            pivots[index] = self._pattern_array[self._position]
            if footprints is None:
                pending.append(self._position)
            else:
                flat_counts[footprints[self._position]] += 1
        return pivots

    def _visible_counts(self, counts: np.ndarray) -> np.ndarray:
        """Counters as the controller sees them (sensor-filtered)."""
        if self.sensor is None:
            return counts
        view = counts.view()
        view.flags.writeable = False
        return self.sensor.read(view)

    def _best_pivot(
        self, config: VirtualConfiguration, counts: np.ndarray
    ) -> tuple[int, int]:
        """Pivot minimising the max stress over the cells it would touch.

        Ties break towards lower current totals, then pattern order, so
        behaviour is deterministic.
        """
        if self.sensor is not None:
            counts = self.sensor.read(counts)
        footprints = candidate_footprints(
            config, self._pattern_array, self.geometry
        )
        best = min_stress_index(np.asarray(counts).reshape(-1)[footprints])
        return self._pattern[best]

    def describe(self) -> str:
        return f"stress_aware(interval={self.interval})"
