"""Shared helpers for the test suite."""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.instructions import OPCODES, InstrClass
from repro.sim.cpu import CPU
from repro.sim.trace import Trace, TraceRecord


def run_asm(source: str, max_steps: int = 500_000):
    """Assemble and functionally execute a snippet."""
    return CPU(assemble(source), max_steps=max_steps).run()


def trace_of(source: str, max_steps: int = 500_000) -> Trace:
    """Committed trace of an assembly snippet."""
    return run_asm(source, max_steps=max_steps).trace


_NEXT_PC = 0x1000


def rec(
    op: str,
    rd: int | None = None,
    rs1: int | None = None,
    rs2: int | None = None,
    imm: int | None = None,
    pc: int | None = None,
    mem_addr: int | None = None,
    mem_bytes: int | None = None,
    taken: bool | None = None,
    next_pc: int | None = None,
) -> TraceRecord:
    """Hand-build a TraceRecord with sensible defaults for tests."""
    global _NEXT_PC
    if pc is None:
        pc = _NEXT_PC
        _NEXT_PC += 4
    spec = OPCODES[op]
    if mem_bytes is None:
        mem_bytes = spec.mem_bytes if mem_addr is not None else 0
    if taken is None and spec.cls is InstrClass.BRANCH:
        taken = False
    if next_pc is None:
        next_pc = pc + 4
    if rd == 0:
        rd = None
    return TraceRecord(
        pc=pc, op=op, cls=spec.cls, rd=rd, rs1=rs1, rs2=rs2, imm=imm,
        rd_value=None, mem_addr=mem_addr, mem_bytes=mem_bytes,
        taken=taken, next_pc=next_pc,
    )


def reset_rec_pcs(base: int = 0x1000) -> None:
    """Reset the automatic PC counter used by :func:`rec`."""
    global _NEXT_PC
    _NEXT_PC = base
