"""Tests for the process-variation Monte Carlo extension."""

import numpy as np
import pytest

from repro.aging.nbti import NBTIModel
from repro.aging.variability import (
    VariationModel,
    balancing_yield_gain,
    lifetime_distribution,
)
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    return NBTIModel()


BASELINE_MAP = np.array([[1.0, 0.6, 0.3, 0.1]])
BALANCED_MAP = np.full((1, 4), 0.5)


class TestVariationModel:
    def test_zero_sigma_is_deterministic(self):
        factors = VariationModel(sigma=0.0).sample_rate_factors((4,), 10)
        assert np.allclose(factors, 1.0)

    def test_median_near_one(self):
        factors = VariationModel(sigma=0.1, seed=1).sample_rate_factors(
            (64,), 200
        )
        assert np.median(factors) == pytest.approx(1.0, abs=0.05)

    def test_reproducible_under_seed(self):
        a = VariationModel(sigma=0.1, seed=7).sample_rate_factors((8,), 5)
        b = VariationModel(sigma=0.1, seed=7).sample_rate_factors((8,), 5)
        assert (a == b).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VariationModel(sigma=-0.1)


class TestLifetimeDistribution:
    def test_no_variation_recovers_point_estimate(self, model):
        dist = lifetime_distribution(
            model, VariationModel(sigma=0.0), BASELINE_MAP, samples=10
        )
        assert dist.std == pytest.approx(0.0)
        assert dist.mean == pytest.approx(
            model.years_to_degradation(1.0)
        )

    def test_variation_widens_spread(self, model):
        tight = lifetime_distribution(
            model, VariationModel(sigma=0.02, seed=3), BASELINE_MAP, 500
        )
        wide = lifetime_distribution(
            model, VariationModel(sigma=0.15, seed=3), BASELINE_MAP, 500
        )
        assert wide.std > tight.std

    def test_first_failure_below_nominal_mean(self, model):
        """Min over FUs with variation cannot beat the deterministic
        worst-FU lifetime on average by much — and p1 < p99."""
        dist = lifetime_distribution(
            model, VariationModel(sigma=0.1, seed=2), BASELINE_MAP, 500
        )
        assert dist.percentile(1) < dist.percentile(99)

    def test_sample_count_validation(self, model):
        with pytest.raises(ConfigurationError):
            lifetime_distribution(
                model, VariationModel(), BASELINE_MAP, samples=0
            )


class TestYieldGain:
    def test_balancing_improves_mission_yield(self, model):
        variation = VariationModel(sigma=0.1, seed=5)
        baseline_yield, proposed_yield = balancing_yield_gain(
            model, variation, BASELINE_MAP, BALANCED_MAP,
            mission_years=4.0, samples=800,
        )
        assert proposed_yield > baseline_yield

    def test_yields_are_probabilities(self, model):
        variation = VariationModel(sigma=0.1, seed=5)
        for y in balancing_yield_gain(
            model, variation, BASELINE_MAP, BALANCED_MAP, 3.0, samples=200
        ):
            assert 0.0 <= y <= 1.0

    def test_balancing_shrinks_spread(self, model):
        """The headline variability effect: balanced stress narrows the
        first-failure distribution."""
        variation = VariationModel(sigma=0.1, seed=9)
        baseline = lifetime_distribution(
            model, variation, BASELINE_MAP, 800
        )
        proposed = lifetime_distribution(
            model, variation, BALANCED_MAP, 800
        )
        assert proposed.std / proposed.mean < baseline.std / baseline.mean + 0.05
        assert proposed.percentile(1) > baseline.percentile(1)