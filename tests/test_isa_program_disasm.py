"""Tests for the Program container and the disassembler."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble, format_instruction
from repro.isa.instructions import Instruction
from repro.isa.program import TEXT_BASE, Program


@pytest.fixture
def program():
    return assemble(
        """
        main:
          li a0, 1
          beqz a0, done
          addi a0, a0, 1
        done:
          ret
        .data
        value: .word 42
        """,
        name="demo",
    )


class TestProgram:
    def test_pc_index_round_trip(self, program):
        for index in range(len(program)):
            assert program.index_of(program.pc_of(index)) == index

    def test_contains_pc(self, program):
        assert program.contains_pc(TEXT_BASE)
        assert not program.contains_pc(TEXT_BASE - 4)
        assert not program.contains_pc(TEXT_BASE + 4 * len(program))
        assert not program.contains_pc(TEXT_BASE + 2)  # misaligned

    def test_index_of_invalid(self, program):
        with pytest.raises(KeyError):
            program.index_of(TEXT_BASE + 2)
        with pytest.raises(KeyError):
            program.index_of(0)

    def test_instruction_at(self, program):
        assert program.instruction_at(TEXT_BASE).op == "addi"  # li

    def test_entry_defaults_to_main(self, program):
        assert program.entry == program.symbols["main"]

    def test_entry_falls_back_to_text_base(self):
        anonymous = assemble("nop\nret")
        assert anonymous.entry == TEXT_BASE

    def test_len_and_name(self, program):
        assert len(program) == 4
        assert program.name == "demo"


class TestFormatInstruction:
    def test_r_format(self):
        text = format_instruction(Instruction("add", rd=10, rs1=11, rs2=12))
        assert text == "add a0, a1, a2"

    def test_load_store(self):
        assert format_instruction(
            Instruction("lw", rd=5, rs1=2, imm=8)
        ) == "lw t0, 8(sp)"
        assert format_instruction(
            Instruction("sw", rs1=2, rs2=5, imm=-4)
        ) == "sw t0, -4(sp)"

    def test_branch_with_label(self):
        ins = Instruction("beq", rs1=5, rs2=6, imm=-8, label="loop")
        assert format_instruction(ins) == "beq t0, t1, loop"

    def test_branch_without_label_uses_pc(self):
        ins = Instruction("beq", rs1=5, rs2=6, imm=-8)
        assert format_instruction(ins, pc=0x1010) == "beq t0, t1, 0x1008"

    def test_branch_without_pc_shows_offset(self):
        ins = Instruction("bne", rs1=5, rs2=6, imm=12)
        assert format_instruction(ins) == "bne t0, t1, .+12"

    def test_u_and_j_formats(self):
        assert format_instruction(
            Instruction("lui", rd=10, imm=0x12345)
        ) == "lui a0, 0x12345"
        assert format_instruction(
            Instruction("jal", rd=0, imm=16), pc=0x1000
        ) == "jal zero, 0x1010"

    def test_system(self):
        assert format_instruction(Instruction("ecall")) == "ecall"


class TestDisassemble:
    def test_labels_and_addresses(self, program):
        listing = disassemble(program)
        assert "main:" in listing
        assert "done:" in listing
        assert f"{TEXT_BASE:#08x}" in listing

    def test_every_instruction_listed(self, program):
        listing = disassemble(program)
        instruction_lines = [
            line for line in listing.splitlines() if line.startswith("  0x")
        ]
        assert len(instruction_lines) == len(program)

    def test_round_trip_simple_block(self):
        source = "add a0, a1, a2\nxor t0, t1, t2\nsub s0, s1, s2"
        program = assemble(source)
        lines = [
            line.split(": ", 1)[1]
            for line in disassemble(program).splitlines()
            if ": " in line
        ]
        reassembled = assemble("\n".join(lines))
        assert reassembled.instructions == program.instructions


class TestCLI:
    def test_experiments_cli_rejects_unknown(self):
        from repro.experiments.__main__ import main

        assert main(["figZZZ"]) == 1

    def test_experiments_cli_runs_table2(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "Table II" in output
        assert "120 ps" in output
