"""The sequence-planning policy protocol: segment plans, the schedule
view, the legacy adapter and the allocator's plan validation.

Companion to ``tests/test_batch_equivalence.py`` (which pins the
engine's bit-identity to the scalar loop): this file pins the protocol
itself — plan granularities, contiguity validation, the
``LegacyPolicyAdapter`` fallback with its one-time DeprecationWarning,
and the migrated ``examples/adaptive_policy.py`` custom policies (new
protocol and legacy variant).
"""

import importlib.util
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.cgra.configuration import PlacedOp, VirtualConfiguration
from repro.cgra.fabric import FabricGeometry
from repro.cgra.fu import FUKind
from repro.core.allocator import ConfigurationAllocator
from repro.core.policy import (
    PLAN_GRANULARITIES,
    AllocationPolicy,
    LegacyPolicyAdapter,
    ScheduleView,
    SegmentPlan,
    iter_runs,
    make_policy,
    policy_class,
    resolve_planner,
)
from repro.core.policy import _LEGACY_WARNED
from repro.errors import AllocationError

ROWS, COLS = 4, 8
GEOMETRY = FabricGeometry(rows=ROWS, cols=COLS)


def synthetic_config(cells, start_pc=0x1000):
    ops = tuple(
        PlacedOp(
            op="add", kind=FUKind.ALU, row=row, col=col, width=1,
            trace_offset=index,
        )
        for index, (row, col) in enumerate(cells)
    )
    return VirtualConfiguration(
        start_pc=start_pc,
        pc_path=tuple(start_pc + 4 * i for i in range(len(cells))),
        ops=ops,
        n_instructions=len(cells),
        geometry_rows=ROWS,
        geometry_cols=COLS,
    )


CONFIG_A = synthetic_config([(0, 0), (1, 1)], start_pc=0x1000)
CONFIG_B = synthetic_config([(0, 2)], start_pc=0x2000)


class TestScheduleView:
    def test_runs_follow_object_identity(self):
        view = ScheduleView((CONFIG_A, CONFIG_A, CONFIG_B, CONFIG_A))
        assert list(view.runs()) == [
            (CONFIG_A, 0, 2),
            (CONFIG_B, 2, 3),
            (CONFIG_A, 3, 4),
        ]
        assert view.n_launches == len(view) == 4

    def test_runs_within_slice(self):
        configs = (CONFIG_A, CONFIG_A, CONFIG_B, CONFIG_B, CONFIG_A)
        assert list(iter_runs(configs, 1, 4)) == [
            (CONFIG_A, 1, 2),
            (CONFIG_B, 2, 4),
        ]

    def test_cycles_exposed_read_only(self):
        cycles = np.asarray([3, 5], dtype=np.int64)
        view = ScheduleView((CONFIG_A, CONFIG_A), cycles)
        np.testing.assert_array_equal(view.cycles, cycles)
        # The view must not let a planner edit the weights the
        # allocator goes on to record.
        assert not view.cycles.flags.writeable
        with pytest.raises(ValueError):
            view.cycles[0] = 9
        assert ScheduleView((CONFIG_A,)).cycles is None


class TestPlanGranularity:
    @pytest.mark.parametrize(
        "name,granularity",
        [
            ("baseline", "schedule"),
            ("rotation", "schedule"),
            ("random", "schedule"),
            ("static_remap", "epoch"),
            ("stress_aware", "interval"),
        ],
    )
    def test_builtin_declarations(self, name, granularity):
        assert policy_class(name).plan_granularity == granularity
        assert granularity in PLAN_GRANULARITIES

    def test_base_class_defaults_to_per_launch(self):
        assert AllocationPolicy.plan_granularity == "launch"

    def test_oblivious_derived_from_granularity(self):
        assert make_policy("rotation").oblivious
        assert make_policy("baseline").oblivious
        assert make_policy("random").oblivious
        assert not make_policy("static_remap").oblivious
        assert not make_policy("stress_aware").oblivious

    def test_legacy_oblivious_class_attribute_still_wins(self):
        class Legacy(AllocationPolicy):
            name = "legacy_oblivious"
            oblivious = True

        assert Legacy().oblivious


class TestBuiltinPlans:
    def test_whole_schedule_policies_yield_one_segment(self):
        for name in ("baseline", "rotation", "random"):
            policy = make_policy(name)
            policy.bind(GEOMETRY)
            plans = list(
                policy.plan_segments(
                    ScheduleView((CONFIG_A, CONFIG_B, CONFIG_A)), None
                )
            )
            assert [(p.start, p.stop) for p in plans] == [(0, 3)]
            assert plans[0].pivots.shape == (3, 2)
            assert plans[0].n_launches == 3

    def test_static_remap_segments_break_at_new_configs(self):
        policy = make_policy("static_remap")
        allocator = ConfigurationAllocator(GEOMETRY, policy)
        view = ScheduleView(
            (CONFIG_A, CONFIG_A, CONFIG_B, CONFIG_A, CONFIG_B)
        )
        plans = list(policy.plan_segments(view, allocator.tracker))
        # One epoch per first-seen config: [0, 2) closes when B first
        # appears, then [2, 5) runs to the end (no further new configs).
        assert [(p.start, p.stop) for p in plans] == [(0, 2), (2, 5)]

    def test_stress_aware_segments_align_to_search_interval(self):
        policy = make_policy("stress_aware", interval=4)
        allocator = ConfigurationAllocator(GEOMETRY, policy)
        view = ScheduleView((CONFIG_A,) * 10)
        plans = list(policy.plan_segments(view, allocator.tracker))
        assert [(p.start, p.stop) for p in plans] == [(0, 4), (4, 8), (8, 10)]

    def test_stress_aware_segments_resume_mid_interval(self):
        policy = make_policy("stress_aware", interval=4)
        allocator = ConfigurationAllocator(GEOMETRY, policy)
        allocator.allocate(CONFIG_A)
        allocator.allocate(CONFIG_A)
        plans = list(
            policy.plan_segments(
                ScheduleView((CONFIG_A,) * 6), allocator.tracker
            )
        )
        # Two scalar launches consumed the first half of the interval:
        # the first segment only runs to the next search boundary.
        assert [(p.start, p.stop) for p in plans] == [(0, 2), (2, 6)]


class FixedLegacyPolicy(AllocationPolicy):
    """next_pivot-only policy: raster-walks pivots per launch."""

    name = "fixed_legacy"

    def __init__(self):
        self._step = 0

    def next_pivot(self, config, tracker):
        pivot = (self._step % ROWS, self._step % COLS)
        self._step += 1
        return pivot


class TestLegacyAdapter:
    def test_adapter_yields_one_segment_per_run(self):
        policy = FixedLegacyPolicy()
        policy.bind(GEOMETRY)
        adapter = LegacyPolicyAdapter(policy, warn=False)
        view = ScheduleView((CONFIG_A, CONFIG_A, CONFIG_B))
        plans = list(adapter.plan_segments(view, None))
        assert [(p.start, p.stop) for p in plans] == [(0, 2), (2, 3)]
        np.testing.assert_array_equal(
            np.concatenate([p.pivots for p in plans]),
            [[0, 0], [1, 1], [2, 2]],
        )

    def test_adapter_oblivious_policy_keeps_whole_schedule_path(self):
        class LegacyOblivious(AllocationPolicy):
            name = "legacy_oblivious_batch"
            oblivious = True
            calls = 0

            def next_pivots(self, config, tracker, count):
                type(self).calls += 1
                return np.zeros((count, 2), dtype=np.int64)

        policy = LegacyOblivious()
        policy.bind(GEOMETRY)
        adapter = LegacyPolicyAdapter(policy, warn=False)
        plans = list(
            adapter.plan_segments(
                ScheduleView((CONFIG_A, CONFIG_B, CONFIG_A)), None
            )
        )
        assert [(p.start, p.stop) for p in plans] == [(0, 3)]
        assert LegacyOblivious.calls == 1

    def test_adapter_empty_schedule_yields_nothing(self):
        adapter = LegacyPolicyAdapter(FixedLegacyPolicy(), warn=False)
        assert list(adapter.plan_segments(ScheduleView(()), None)) == []

    def test_deprecation_warning_once_per_class(self):
        class WarnOnce(FixedLegacyPolicy):
            name = "warn_once"

        _LEGACY_WARNED.discard(WarnOnce)
        with pytest.warns(DeprecationWarning, match="plan_segments"):
            LegacyPolicyAdapter(WarnOnce())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            LegacyPolicyAdapter(WarnOnce())  # second wrap: silent

    def test_resolve_planner_prefers_policy_hook(self):
        policy = make_policy("rotation")
        assert resolve_planner(policy) == policy.plan_segments

    def test_resolve_planner_wraps_legacy(self):
        class Wrapped(FixedLegacyPolicy):
            name = "wrapped_legacy"

        policy = Wrapped()
        policy.bind(GEOMETRY)
        _LEGACY_WARNED.discard(Wrapped)
        with pytest.warns(DeprecationWarning):
            planner = resolve_planner(policy)
        plans = list(planner(ScheduleView((CONFIG_A,)), None))
        assert [(p.start, p.stop) for p in plans] == [(0, 1)]

    def test_legacy_policy_batch_matches_scalar(self):
        scalar = ConfigurationAllocator(GEOMETRY, FixedLegacyPolicy())
        batched = ConfigurationAllocator(GEOMETRY, FixedLegacyPolicy())
        sequence = [CONFIG_A, CONFIG_A, CONFIG_B, CONFIG_A, CONFIG_B]
        pivots = [scalar.allocate(c).pivot for c in sequence]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            batch = batched.allocate_batch(sequence)
        np.testing.assert_array_equal(
            batch.pivots, np.asarray(pivots, dtype=np.int64)
        )
        np.testing.assert_array_equal(
            scalar.tracker.execution_counts,
            batched.tracker.execution_counts,
        )


class _MisplannedPolicy(AllocationPolicy):
    """Yields whatever segments the test injects."""

    name = "misplanned"

    def __init__(self, plans):
        self._plans = plans

    def next_pivot(self, config, tracker):  # pragma: no cover
        return (0, 0)

    def plan_segments(self, schedule, tracker):
        yield from self._plans


def _zeros(count):
    return np.zeros((count, 2), dtype=np.int64)


class TestPlanValidation:
    def _allocate(self, plans, sequence=None):
        sequence = sequence or [CONFIG_A] * 4
        allocator = ConfigurationAllocator(
            GEOMETRY, _MisplannedPolicy(plans)
        )
        return allocator, lambda: allocator.allocate_batch(sequence)

    def test_gap_between_segments_rejected(self):
        _, run = self._allocate(
            [SegmentPlan(0, 2, _zeros(2)), SegmentPlan(3, 4, _zeros(1))]
        )
        with pytest.raises(AllocationError, match="out of order"):
            run()

    def test_overlapping_segments_rejected(self):
        _, run = self._allocate(
            [SegmentPlan(0, 3, _zeros(3)), SegmentPlan(2, 4, _zeros(2))]
        )
        with pytest.raises(AllocationError, match="out of order"):
            run()

    def test_overrunning_segment_rejected(self):
        _, run = self._allocate([SegmentPlan(0, 9, _zeros(9))])
        with pytest.raises(AllocationError, match="out of order"):
            run()

    def test_short_coverage_rejected(self):
        _, run = self._allocate([SegmentPlan(0, 2, _zeros(2))])
        with pytest.raises(AllocationError, match="covering only 2 of 4"):
            run()

    def test_bad_pivot_shape_rejected(self):
        _, run = self._allocate([SegmentPlan(0, 4, _zeros(3))])
        with pytest.raises(AllocationError, match="shape"):
            run()

    def test_out_of_range_pivot_rejected(self):
        bad = _zeros(4)
        bad[2] = (ROWS, 0)
        _, run = self._allocate([SegmentPlan(0, 4, bad)])
        with pytest.raises(AllocationError, match="outside"):
            run()

    def test_tracker_consistent_after_bad_plan(self):
        """Segments accepted before the error are recorded; launches
        and the tracker agree (the legacy per-run loop's guarantee)."""
        allocator, run = self._allocate(
            [SegmentPlan(0, 2, _zeros(2)), SegmentPlan(3, 4, _zeros(1))]
        )
        with pytest.raises(AllocationError):
            run()
        assert allocator.launches == 2
        assert allocator.tracker.total_executions == 2


def _load_example(name="example_adaptive_policy"):
    path = Path(__file__).parent.parent / "examples" / "adaptive_policy.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplePolicies:
    """examples/adaptive_policy.py stays on the supported path: the
    migrated sequence-planning policy and its legacy per-launch
    variant are bit-identical, and the legacy one warns."""

    @pytest.fixture(scope="class")
    def example(self):
        return _load_example()

    def test_modern_and_legacy_variants_identical(self, example):
        _LEGACY_WARNED.discard(example.LegacyCoolestCornerPolicy)
        modern, legacy, deprecations = example.demo_custom_policy()
        np.testing.assert_array_equal(
            modern.execution_counts, legacy.execution_counts
        )
        np.testing.assert_array_equal(
            modern.cycle_counts, legacy.cycle_counts
        )
        assert modern.config_footprints == legacy.config_footprints
        assert len(deprecations) == 1

    @pytest.mark.parametrize("epoch", [3, 5, 7, 16, 64])
    def test_variants_identical_across_epochs(self, example, epoch):
        """Bit-identity must hold for any epoch, not just the demo's —
        the legacy variant's batch-exact ``next_pivots`` models its
        own runs' stress so mid-run re-anchors see live counters."""
        from repro.system import SystemParams, replay_schedule, shared_schedule
        from repro.workloads.suite import run_workload

        geometry = FabricGeometry(rows=4, cols=16)
        schedule = shared_schedule(
            SystemParams(geometry=geometry), run_workload("crc32")
        )
        modern = replay_schedule(
            schedule, geometry, example.CoolestCornerPolicy(epoch=epoch)
        )
        legacy = replay_schedule(
            schedule, geometry, example.LegacyCoolestCornerPolicy(epoch=epoch)
        )
        np.testing.assert_array_equal(
            modern.tracker.execution_counts,
            legacy.tracker.execution_counts,
        )

    @pytest.mark.parametrize("epoch", [3, 16])
    def test_modern_variant_matches_scalar_loop(self, example, epoch):
        """The ground truth is the scalar launch loop; both variants
        must match it, not merely each other."""
        sequence = [CONFIG_A, CONFIG_B, CONFIG_B, CONFIG_A] * 9
        scalar = ConfigurationAllocator(
            GEOMETRY, example.CoolestCornerPolicy(epoch=epoch)
        )
        planned = ConfigurationAllocator(
            GEOMETRY, example.CoolestCornerPolicy(epoch=epoch)
        )
        legacy = ConfigurationAllocator(
            GEOMETRY, example.LegacyCoolestCornerPolicy(epoch=epoch)
        )
        for config in sequence:
            scalar.allocate(config)
        planned.allocate_batch(sequence)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy.allocate_batch(sequence)
        np.testing.assert_array_equal(
            scalar.tracker.execution_counts,
            planned.tracker.execution_counts,
        )
        np.testing.assert_array_equal(
            scalar.tracker.execution_counts,
            legacy.tracker.execution_counts,
        )

    def test_modern_variant_plans_epoch_segments(self, example):
        policy = example.CoolestCornerPolicy(epoch=4)
        policy.bind(GEOMETRY)
        allocator = ConfigurationAllocator(GEOMETRY, policy)
        plans = list(
            policy.plan_segments(
                ScheduleView((CONFIG_A,) * 10), allocator.tracker
            )
        )
        assert [(p.start, p.stop) for p in plans] == [(0, 4), (4, 8), (8, 10)]

    def test_scalar_and_planned_example_policy_agree(self, example):
        sequence = [CONFIG_A, CONFIG_A, CONFIG_B] * 7
        scalar = ConfigurationAllocator(
            GEOMETRY, example.CoolestCornerPolicy(epoch=5)
        )
        batched = ConfigurationAllocator(
            GEOMETRY, example.CoolestCornerPolicy(epoch=5)
        )
        pivots = [scalar.allocate(c).pivot for c in sequence]
        batch = batched.allocate_batch(sequence)
        np.testing.assert_array_equal(
            batch.pivots, np.asarray(pivots, dtype=np.int64)
        )
        np.testing.assert_array_equal(
            scalar.tracker.execution_counts,
            batched.tracker.execution_counts,
        )
