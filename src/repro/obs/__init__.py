"""repro.obs — lightweight, dependency-free telemetry.

Counters, value summaries and phase timers (:mod:`repro.obs.core`),
Chrome trace-event span capture (:mod:`repro.obs.tracing`) and a
structured stderr logger (:mod:`repro.obs.log`), wired through the
whole pipeline: the schedule walk, batch replay, config cache, the
mappers, the kernel backend and the campaign runner all record here
when telemetry is enabled.

Disabled (the default) everything is a near-zero no-op — one flag
check per event — and no output changes anywhere. Enable with
``REPRO_TELEMETRY=1``, :func:`set_enabled`, or the ``--profile`` CLI
flags (which additionally capture spans to a trace file).

Quick start::

    from repro import obs

    obs.set_enabled(True)
    with obs.span("my.phase", detail="useful"):
        ...
    obs.count("my.counter")
    print(obs.snapshot().counters)
"""

from repro.obs import log, tracing
from repro.obs.core import (
    TELEMETRY_ENV,
    Stopwatch,
    TelemetrySnapshot,
    absorb,
    count,
    enabled,
    note,
    observe,
    reset,
    set_enabled,
    snapshot,
    span,
    state,
    stopwatch,
    telemetry,
    timed,
)

__all__ = [
    "TELEMETRY_ENV",
    "Stopwatch",
    "TelemetrySnapshot",
    "absorb",
    "count",
    "enabled",
    "log",
    "note",
    "observe",
    "reset",
    "set_enabled",
    "snapshot",
    "span",
    "state",
    "stopwatch",
    "telemetry",
    "timed",
    "tracing",
]
