"""A 15nm-class standard-cell library and cell-count accounting.

Areas/leakages/delays approximate NanGate FreePDK15 X1 drive cells.
Absolute values matter less than their relative magnitudes: every
result quoted from this model is a ratio, plus one calibrated absolute
(the Table II baseline).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    """One standard cell.

    Attributes:
        name: library name.
        area_um2: placed area in square microns.
        delay_ps: characteristic propagation delay.
        leakage_nw: static leakage power in nanowatts.
    """

    name: str
    area_um2: float
    delay_ps: float
    leakage_nw: float


#: The library: name -> cell.
CELL_LIBRARY: dict[str, Cell] = {
    cell.name: cell
    for cell in (
        Cell("INV", 0.098, 4.0, 1.0),
        Cell("BUF", 0.147, 6.0, 1.2),
        Cell("NAND2", 0.147, 5.0, 1.2),
        Cell("NOR2", 0.147, 6.0, 1.2),
        Cell("AND2", 0.196, 7.0, 1.4),
        Cell("OR2", 0.196, 7.0, 1.4),
        Cell("XOR2", 0.294, 9.0, 2.2),
        Cell("MUX2", 0.294, 8.0, 2.0),
        Cell("FA", 0.982, 10.0, 5.5),
        Cell("DFF", 0.442, 0.0, 3.5),
    )
}


class CellCounts(Counter):
    """A multiset of cells with area/leakage rollups.

    Behaves like ``collections.Counter`` keyed by cell name; supports
    ``+`` and scalar multiplication for composing component models.
    """

    def area_um2(self) -> float:
        """Total placed area of the counted cells."""
        return sum(
            CELL_LIBRARY[name].area_um2 * count for name, count in self.items()
        )

    def leakage_nw(self) -> float:
        """Total static leakage of the counted cells."""
        return sum(
            CELL_LIBRARY[name].leakage_nw * count
            for name, count in self.items()
        )

    def n_cells(self) -> int:
        """Total number of cell instances."""
        return sum(self.values())

    def __add__(self, other: "CellCounts") -> "CellCounts":
        result = CellCounts(self)
        for name, count in other.items():
            result[name] += count
        return result

    def scaled(self, factor: int) -> "CellCounts":
        """This count replicated ``factor`` times."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return CellCounts({name: count * factor for name, count in self.items()})
