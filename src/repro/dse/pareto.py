"""Pareto-front utilities over DSE points."""

from __future__ import annotations

from collections.abc import Sequence

from repro.dse.sweep import DSEPoint


def dominates(a: DSEPoint, b: DSEPoint) -> bool:
    """Whether ``a`` is at least as good as ``b`` on both axes
    (execution time, energy) and strictly better on one."""
    no_worse = (
        a.exec_time_ratio <= b.exec_time_ratio
        and a.energy_ratio <= b.energy_ratio
    )
    strictly_better = (
        a.exec_time_ratio < b.exec_time_ratio
        or a.energy_ratio < b.energy_ratio
    )
    return no_worse and strictly_better


def pareto_front(points: Sequence[DSEPoint]) -> list[DSEPoint]:
    """Non-dominated subset, sorted by execution-time ratio."""
    front = [
        p for p in points
        if not any(dominates(other, p) for other in points)
    ]
    return sorted(front, key=lambda p: p.exec_time_ratio)
