"""PC-indexed configuration cache with LRU replacement.

The DBT saves each translation unit here, keyed by the PC of its first
instruction (Step 3 of the TransRec execution model) *and* by the
identity of the mapper that placed it; while the GPP runs, the cache is
probed with the upcoming PC (Step 4) in the cache's bound mapper
namespace. The mapper dimension matters for campaigns that sweep
several mappers over one fabric: a virtual configuration placed by one
mapper must never replay as if another mapper had produced it, so
entries from different mappers can coexist without aliasing.

Capacity is expressed in entries; the bit cost of one entry for a given
fabric geometry is available from
:class:`repro.cgra.reconfig.ReconfigLogicSpec` and surfaces in the SRAM
area model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro import obs
from repro.cgra.configuration import DEFAULT_MAPPER_KEY, VirtualConfiguration
from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_MAPPER_KEY",  # re-export: the cache's default namespace
    "ConfigCache",
    "ConfigCacheStats",
    "EntryStats",
]


@dataclass
class ConfigCacheStats:
    """Access counters for one simulation run."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0   # translation attempts that produced no unit
    truncations: int = 0  # units shortened by the misspec monitor
    blacklisted: int = 0  # units dropped by the misspec monitor

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0


@dataclass
class EntryStats:
    """Replay monitoring counters for one cached unit (the two small
    hardware counters of the adaptive DBT)."""

    launches: int = 0
    misspeculations: int = 0

    def misspec_dominated(self, min_launches: int) -> bool:
        """Whether this unit diverges on most replays."""
        return (
            self.launches >= min_launches
            and 2 * self.misspeculations >= self.launches
        )


@dataclass
class ConfigCache:
    """LRU cache mapping (mapper identity, start PC) ->
    :class:`VirtualConfiguration`.

    ``mapper_key`` is the namespace that PC-based probes
    (:meth:`lookup`, :meth:`remove`, :meth:`entry_stats`,
    ``pc in cache``) resolve in; :meth:`insert` always files a unit
    under the identity recorded on the unit itself, so stale
    cross-mapper reuse is structurally impossible even when one cache
    object is shared by several engines.
    """

    capacity: int = 64
    stats: ConfigCacheStats = field(default_factory=ConfigCacheStats)
    mapper_key: str = DEFAULT_MAPPER_KEY

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError("config cache capacity must be >= 1")
        self._entries: OrderedDict[
            tuple[str, int], VirtualConfiguration
        ] = OrderedDict()
        self._entry_stats: dict[tuple[str, int], EntryStats] = {}

    def _key(self, pc: int) -> tuple[str, int]:
        return (self.mapper_key, pc)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pc: int) -> bool:
        return self._key(pc) in self._entries

    def lookup(self, pc: int) -> VirtualConfiguration | None:
        """Probe the cache; counts a hit/miss and refreshes recency."""
        key = self._key(pc)
        unit = self._entries.get(key)
        if unit is None:
            self.stats.misses += 1
            if obs.state.enabled:
                obs.count(f"config_cache.misses[{self.mapper_key}]")
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if obs.state.enabled:
            obs.count(f"config_cache.hits[{self.mapper_key}]")
        return unit

    def insert(self, unit: VirtualConfiguration) -> None:
        """Insert a freshly translated unit, evicting the LRU entry.

        The entry is keyed by the unit's own ``mapper_key``, which for
        units built through the engine equals the engine's mapper
        identity — two mappers sweeping the same PCs occupy disjoint
        key spaces.
        """
        key = (unit.mapper_key, unit.start_pc)
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = unit
            self._entry_stats[key] = EntryStats()
            return
        if len(self._entries) >= self.capacity:
            evicted_key, _ = self._entries.popitem(last=False)
            self._entry_stats.pop(evicted_key, None)
            self.stats.evictions += 1
            if obs.state.enabled:
                obs.count(f"config_cache.evictions[{unit.mapper_key}]")
        self._entries[key] = unit
        self._entry_stats[key] = EntryStats()
        self.stats.insertions += 1

    def remove(self, pc: int) -> None:
        """Drop an entry (misspec-monitor blacklisting)."""
        key = self._key(pc)
        self._entries.pop(key, None)
        self._entry_stats.pop(key, None)

    def entry_stats(self, pc: int) -> EntryStats | None:
        """Replay counters for the unit at ``pc``, if resident."""
        return self._entry_stats.get(self._key(pc))

    def units(self) -> tuple[VirtualConfiguration, ...]:
        """All resident units (every mapper namespace), LRU-first."""
        return tuple(self._entries.values())
