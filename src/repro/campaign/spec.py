"""Declarative campaign specifications.

A campaign enumerates design points — (geometry, policy, workload set)
combinations — without running anything. Seeds expand seedable policies
(currently ``random``) into one design point per seed, so statistical
reference policies can be averaged over repetitions declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.policy import available_policies, policy_class
from repro.errors import ConfigurationError
from repro.workloads.suite import workload_names


@dataclass(frozen=True)
class PolicySpec:
    """An allocation policy plus constructor arguments, hashable.

    ``kwargs`` is stored as a sorted item tuple so specs can key dicts
    and survive JSON round trips.
    """

    name: str
    kwargs: tuple[tuple[str, object], ...] = ()

    @classmethod
    def make(cls, name: str, **kwargs) -> "PolicySpec":
        return cls(name=name, kwargs=tuple(sorted(kwargs.items())))

    def __post_init__(self) -> None:
        if self.name not in available_policies():
            raise ConfigurationError(
                f"unknown policy {self.name!r}; "
                f"available: {list(available_policies())}"
            )

    def as_kwargs(self) -> dict:
        return dict(self.kwargs)

    @property
    def seedable(self) -> bool:
        """Whether the policy draws from a seedable RNG."""
        return bool(getattr(policy_class(self.name), "seedable", False))

    def with_seed(self, seed: int) -> "PolicySpec":
        """Copy of this spec pinned to ``seed``."""
        kwargs = self.as_kwargs()
        kwargs["seed"] = seed
        return PolicySpec.make(self.name, **kwargs)

    @property
    def label(self) -> str:
        if not self.kwargs:
            return self.name
        args = ",".join(f"{key}={value}" for key, value in self.kwargs)
        return f"{self.name}({args})"


@dataclass(frozen=True)
class DesignPoint:
    """One evaluatable point of a campaign."""

    rows: int
    cols: int
    policy: PolicySpec
    workloads: tuple[str, ...]

    @property
    def key(self) -> str:
        """Filesystem-safe identifier (artifact file stem)."""
        parts = [f"L{self.cols}xW{self.rows}", self.policy.name]
        parts.extend(f"{key}-{value}" for key, value in self.policy.kwargs)
        return "__".join(
            "".join(ch if ch.isalnum() or ch in "-_." else "-" for ch in str(part))
            for part in parts
        )

    @property
    def label(self) -> str:
        return f"L{self.cols}xW{self.rows}/{self.policy.label}"


@dataclass(frozen=True)
class CampaignSpec:
    """Cross product of geometries x policies x workloads x seeds.

    Attributes:
        geometries: ``(rows, cols)`` fabric shapes.
        policies: allocation policies to evaluate on each shape.
        workloads: suite member names; empty selects the full suite.
        seeds: when non-empty, every *seedable* policy is expanded into
            one design point per seed (non-seedable policies are kept
            as-is, once).
        name: campaign identifier (artifact manifest name).
    """

    geometries: tuple[tuple[int, int], ...]
    policies: tuple[PolicySpec, ...]
    workloads: tuple[str, ...] = ()
    seeds: tuple[int, ...] = ()
    name: str = "campaign"

    def __post_init__(self) -> None:
        if not self.geometries:
            raise ConfigurationError("campaign needs at least one geometry")
        if not self.policies:
            raise ConfigurationError("campaign needs at least one policy")
        for rows, cols in self.geometries:
            if rows < 1 or cols < 1:
                raise ConfigurationError(
                    f"invalid geometry ({rows}, {cols})"
                )

    def resolved_workloads(self) -> tuple[str, ...]:
        """Workload selection with the empty default expanded."""
        return self.workloads if self.workloads else workload_names()

    def expanded_policies(self) -> tuple[PolicySpec, ...]:
        """Policies with seed expansion applied."""
        if not self.seeds:
            return self.policies
        expanded: list[PolicySpec] = []
        for policy in self.policies:
            if policy.seedable:
                expanded.extend(policy.with_seed(seed) for seed in self.seeds)
            else:
                expanded.append(policy)
        return tuple(expanded)

    def design_points(self) -> tuple[DesignPoint, ...]:
        """Every design point, geometries outermost, policies inner.

        Raises:
            ConfigurationError: on duplicate design points (repeated
                geometries, policies or seeds) — duplicates would
                silently collapse when results are keyed by point.
        """
        workloads = self.resolved_workloads()
        points = tuple(
            DesignPoint(rows=rows, cols=cols, policy=policy, workloads=workloads)
            for rows, cols in self.geometries
            for policy in self.expanded_policies()
        )
        seen: set[DesignPoint] = set()
        for point in points:
            if point in seen:
                raise ConfigurationError(
                    f"duplicate design point {point.label!r}; check for "
                    "repeated geometries, policies or seeds"
                )
            seen.add(point)
        return points

    def with_workloads(self, workloads: tuple[str, ...]) -> "CampaignSpec":
        return replace(self, workloads=workloads)

    def to_jsonable(self) -> dict:
        """Manifest form (see ``campaign.json`` artifacts)."""
        return {
            "name": self.name,
            "geometries": [list(shape) for shape in self.geometries],
            "policies": [
                {"name": policy.name, "kwargs": policy.as_kwargs()}
                for policy in self.policies
            ],
            "workloads": list(self.resolved_workloads()),
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "CampaignSpec":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            name=payload.get("name", "campaign"),
            geometries=tuple(
                (int(rows), int(cols))
                for rows, cols in payload["geometries"]
            ),
            policies=tuple(
                PolicySpec.make(entry["name"], **entry.get("kwargs", {}))
                for entry in payload["policies"]
            ),
            workloads=tuple(payload.get("workloads", ())),
            seeds=tuple(int(seed) for seed in payload.get("seeds", ())),
        )
