"""qsort (MiBench automotive): iterative quicksort over a word array.

Lomuto partition with an explicit segment stack (no recursion, so the
kernel stays within the simulator's simple calling model). Elements
compare as signed 32-bit values; the checksum is the position-weighted
sum of the sorted array.
"""

from __future__ import annotations

from repro.workloads._data import lcg_stream, to_u32, words_directive
from repro.workloads.suite import Workload

N_ELEMENTS = 96
SEED = 0x9507_7357


def _reference(values: list[int]) -> int:
    def signed(v: int) -> int:
        return v - 0x100000000 if v & 0x80000000 else v

    ordered = sorted(values, key=signed)
    return to_u32(
        sum((index + 1) * value for index, value in enumerate(ordered))
    )


def build() -> Workload:
    values = lcg_stream(SEED, N_ELEMENTS)
    source = f"""
# qsort: iterative Lomuto quicksort over {N_ELEMENTS} signed words.
main:
    la   s0, arr
    la   s1, stk
    li   s2, 2              # stack top (word count); seeded below
    sw   zero, 0(s1)        # push lo = 0
    li   t0, {N_ELEMENTS - 1}
    sw   t0, 4(s1)          # push hi = n-1
qloop:
    beqz s2, done
    addi s2, s2, -2         # pop (lo, hi)
    slli t0, s2, 2
    add  t1, s1, t0
    lw   s3, 0(t1)          # lo
    lw   s4, 4(t1)          # hi
    bge  s3, s4, qloop
    slli t0, s4, 2          # partition: pivot = arr[hi]
    add  t1, s0, t0
    lw   s5, 0(t1)
    addi s6, s3, -1         # i = lo - 1
    mv   s7, s3             # j = lo
part:
    slli t0, s7, 2
    add  t1, s0, t0
    lw   t2, 0(t1)          # arr[j]
    bgt  t2, s5, pnext
    addi s6, s6, 1
    slli t3, s6, 2          # swap arr[i] <-> arr[j]
    add  t4, s0, t3
    lw   t5, 0(t4)
    sw   t2, 0(t4)
    sw   t5, 0(t1)
pnext:
    addi s7, s7, 1
    blt  s7, s4, part
    addi s6, s6, 1          # pivot's final slot
    slli t0, s6, 2          # swap arr[i] <-> arr[hi]
    add  t1, s0, t0
    lw   t2, 0(t1)
    slli t3, s4, 2
    add  t4, s0, t3
    lw   t5, 0(t4)
    sw   t5, 0(t1)
    sw   t2, 0(t4)
    slli t0, s2, 2          # push (lo, i-1)
    add  t1, s1, t0
    addi t2, s6, -1
    sw   s3, 0(t1)
    sw   t2, 4(t1)
    addi s2, s2, 2
    slli t0, s2, 2          # push (i+1, hi)
    add  t1, s1, t0
    addi t2, s6, 1
    sw   t2, 0(t1)
    sw   s4, 4(t1)
    addi s2, s2, 2
    j    qloop
done:
    li   a0, 0              # checksum: sum (i+1)*arr[i]
    li   t0, 0
    li   t6, {N_ELEMENTS}
csum:
    slli t1, t0, 2
    add  t2, s0, t1
    lw   t3, 0(t2)
    addi t4, t0, 1
    mul  t5, t3, t4
    add  a0, a0, t5
    addi t0, t0, 1
    blt  t0, t6, csum
    li   a7, 93
    ecall

.data
{words_directive("arr", values)}
stk: .space {8 * (N_ELEMENTS + 8)}
"""
    return Workload(
        name="qsort",
        category="automotive",
        description="iterative Lomuto quicksort over signed words",
        source=source,
        expected_checksum=_reference(values),
    )
