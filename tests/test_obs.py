"""Telemetry layer (:mod:`repro.obs`): semantics, aggregation, output.

Covers the ISSUE-7 observability contract:

* disabled mode is a strict no-op — nothing recorded, shared null
  span, and (the golden guard at the bottom) zero change to any
  experiment stdout/JSON;
* enabled-mode counter / value-summary / timer arithmetic;
* Chrome trace-event capture emits schema-valid JSON;
* snapshot merge and absorb are exact (the campaign pool aggregation
  path), and a parallel campaign reports the same deterministic
  counter totals as a serial one;
* the CGRAStats config-cache mirrors ride along without touching the
  field-driven (golden-pinned) serialization.
"""

import contextlib
import functools
import io
import json
import logging
import pickle
from pathlib import Path

import pytest

from repro import obs
from repro.obs.core import _record
from repro.campaign.artifacts import to_jsonable, write_telemetry
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, PolicySpec
from repro.system import clear_schedule_caches
from repro.system.statsdump import stats_lines
from repro.workloads import run_workload

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts and ends with a disabled, empty registry and
    no active trace capture."""
    previous = obs.set_enabled(False)
    obs.reset()
    obs.tracing.stop()
    yield
    obs.set_enabled(previous)
    obs.reset()
    obs.tracing.stop()


# ----------------------------------------------------------------------
# Disabled-mode no-op semantics


def test_disabled_records_nothing():
    obs.count("c")
    obs.observe("v", 1.5)
    obs.note("n", "msg")
    with obs.span("t"):
        pass
    snap = obs.snapshot()
    assert snap.empty
    assert snap.counters == {}
    assert snap.values == {}
    assert snap.timers == {}
    assert snap.notes == {}


def test_disabled_span_is_shared_null_object():
    assert obs.span("a") is obs.span("b", key="value")


def test_stopwatch_measures_even_when_disabled():
    with obs.stopwatch("bench.x") as watch:
        sum(range(1000))
    assert watch.elapsed > 0.0
    assert obs.snapshot().timers == {}  # measured, not recorded


def test_timed_decorator_disabled_passthrough():
    @obs.timed("t.f")
    def f(x):
        return x + 1

    assert f(1) == 2
    assert obs.snapshot().timers == {}


# ----------------------------------------------------------------------
# Enabled-mode arithmetic


def test_counter_math():
    obs.set_enabled(True)
    obs.count("c")
    obs.count("c", 4)
    obs.count("d", 2)
    assert obs.snapshot().counters == {"c": 5, "d": 2}


def test_value_summary_math():
    obs.set_enabled(True)
    for value in (3.0, -1.0, 2.0):
        obs.observe("v", value)
    summary = obs.snapshot().values["v"]
    assert summary == {"count": 3, "total": 4.0, "min": -1.0, "max": 3.0}


def test_timer_records_span_and_decorator():
    obs.set_enabled(True)
    with obs.span("phase.a"):
        pass
    with obs.span("phase.a"):
        pass

    @obs.timed("phase.b")
    def f():
        return 7

    assert f() == 7
    snap = obs.snapshot()
    assert snap.timers["phase.a"]["count"] == 2
    assert snap.timers["phase.b"]["count"] == 1
    assert snap.timer_total("phase.a") >= snap.timers["phase.a"]["min"]
    assert snap.timer_total("phase.missing") == 0.0


def test_note_last_write_wins():
    obs.set_enabled(True)
    obs.note("k", "first")
    obs.note("k", "second")
    assert obs.snapshot().notes == {"k": "second"}


def test_telemetry_context_manager_restores_flag():
    assert not obs.enabled()
    with obs.telemetry():
        assert obs.enabled()
        obs.count("inner")
    assert not obs.enabled()
    assert obs.snapshot().counters == {"inner": 1}


def test_reset_keeps_enabled_flag():
    obs.set_enabled(True)
    obs.count("c")
    obs.reset()
    assert obs.enabled()
    assert obs.snapshot().counters == {}


# ----------------------------------------------------------------------
# Snapshot merge / absorb (the pool aggregation arithmetic)


def _snapshot_with(counters, value=None, timer=None):
    obs.reset()
    for name, amount in counters.items():
        obs.count(name, amount)
    if value is not None:
        obs.observe("v", value)
    if timer is not None:
        _record(obs.state.timers, "t", timer)
    snap = obs.snapshot()
    obs.reset()
    return snap


def test_snapshot_merge_math():
    obs.set_enabled(True)
    left = _snapshot_with({"a": 1, "b": 2}, value=1.0, timer=0.5)
    right = _snapshot_with({"b": 3, "c": 4}, value=5.0, timer=0.25)
    merged = left.merge(right)
    assert merged is left
    assert merged.counters == {"a": 1, "b": 5, "c": 4}
    assert merged.values["v"] == {
        "count": 2,
        "total": 6.0,
        "min": 1.0,
        "max": 5.0,
    }
    assert merged.timers["t"] == {
        "count": 2,
        "total_s": 0.75,
        "min": 0.25,
        "max": 0.5,
    }


def test_absorb_merges_into_live_registry():
    obs.set_enabled(True)
    worker = _snapshot_with({"a": 2}, value=3.0, timer=1.0)
    obs.count("a", 1)
    obs.observe("v", -1.0)
    obs.absorb(worker)
    obs.absorb(None)  # no-op
    snap = obs.snapshot()
    assert snap.counters == {"a": 3}
    assert snap.values["v"] == {
        "count": 2,
        "total": 2.0,
        "min": -1.0,
        "max": 3.0,
    }
    assert snap.timers["t"]["count"] == 1


def test_snapshot_is_picklable():
    obs.set_enabled(True)
    obs.count("c", 2)
    with obs.span("t"):
        pass
    snap = obs.snapshot()
    clone = pickle.loads(pickle.dumps(snap))
    assert clone.counters == snap.counters
    assert clone.timers == snap.timers


# ----------------------------------------------------------------------
# Chrome trace-event capture


def test_trace_event_schema(tmp_path):
    obs.set_enabled(True)
    obs.tracing.start()
    with obs.span("stage.alpha", detail="x"):
        pass
    obs.tracing.add_instant_event("marker.one")
    path = obs.tracing.write(tmp_path / "trace.json")
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    events = payload["traceEvents"]
    assert len(events) == 2
    for event in events:
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            assert key in event
    complete = next(e for e in events if e["ph"] == "X")
    assert complete["name"] == "stage.alpha"
    assert complete["cat"] == "stage"
    assert complete["dur"] >= 0
    assert complete["args"] == {"detail": "x"}
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["name"] == "marker.one"


def test_trace_capture_off_by_default():
    obs.set_enabled(True)
    with obs.span("stage.alpha"):
        pass
    assert obs.tracing.events() == []
    assert not obs.tracing.active()
    # the timer still recorded
    assert "stage.alpha" in obs.snapshot().timers


def test_snapshot_carries_trace_events_and_absorb_extends():
    obs.set_enabled(True)
    obs.tracing.start()
    with obs.span("stage.worker"):
        pass
    worker = obs.snapshot()
    assert [e["name"] for e in worker.trace_events] == ["stage.worker"]
    obs.tracing.start()  # parent capture, fresh buffer
    obs.absorb(worker)
    assert [e["name"] for e in obs.tracing.events()] == ["stage.worker"]


# ----------------------------------------------------------------------
# Campaign aggregation: serial and parallel runs agree


def _bench_spec():
    return CampaignSpec(
        geometries=((4, 4),),
        policies=(PolicySpec("baseline"), PolicySpec("rotation")),
        workloads=("bitcount",),
        name="obs_test",
    )


#: Counters whose totals are a pure function of the campaign spec —
#: identical however the points are split across workers. (Walk/memo
#: counters are excluded: group splitting legitimately re-walks.)
_DETERMINISTIC_COUNTERS = (
    "campaign.points",
    "schedule.replays",
    "transrec.runs.replay",
    "allocator.launches",
    "allocator.segments",
)


def test_campaign_serial_vs_parallel_counter_totals(tmp_path):
    run_workload("bitcount")  # warm the shared trace memo
    spec = _bench_spec()
    obs.set_enabled(True)

    obs.reset()
    serial_result = CampaignRunner(
        artifact_dir=tmp_path / "serial"
    ).run(spec)
    serial = obs.snapshot()

    obs.reset()
    parallel_result = CampaignRunner(
        max_workers=2, artifact_dir=tmp_path / "parallel"
    ).run(spec)
    parallel = obs.snapshot()

    for name in _DETERMINISTIC_COUNTERS:
        assert serial.counters.get(name) == parallel.counters.get(name), name
    assert serial.counters["campaign.points"] == 2
    assert serial.counters["allocator.launches"] > 0

    # Results bit-identical regardless of execution mode (pre-existing
    # guarantee — telemetry must not perturb it).
    for point, run in serial_result.runs.items():
        other = parallel_result.runs[point]
        for name, result in run.results.items():
            assert result.transrec_cycles == other.results[name].transrec_cycles

    # Both runs produced a merged telemetry artifact matching the
    # registry the runner left behind.
    for directory, snap in (("serial", serial), ("parallel", parallel)):
        payload = json.loads(
            (tmp_path / directory / "telemetry.json").read_text()
        )
        assert payload["counters"] == snap.counters


def test_campaign_without_telemetry_writes_no_artifact(tmp_path):
    CampaignRunner(artifact_dir=tmp_path).run(_bench_spec())
    assert not (tmp_path / "telemetry.json").exists()
    assert (tmp_path / "campaign.json").exists()


def test_write_telemetry_artifact(tmp_path):
    obs.set_enabled(True)
    obs.count("c", 3)
    with obs.span("t"):
        pass
    path = write_telemetry(tmp_path / "telemetry.json", obs.snapshot())
    payload = json.loads(path.read_text())
    assert payload["counters"] == {"c": 3}
    assert payload["timers"]["t"]["count"] == 1
    assert payload["n_trace_events"] == 0


# ----------------------------------------------------------------------
# Pipeline counters: schedule disk cache, statsdump, CGRAStats mirrors


def test_disk_cache_counters(tmp_path):
    from repro.cgra.fabric import FabricGeometry
    from repro.system.params import SystemParams
    from repro.system.schedule import set_schedule_cache_dir, shared_schedule

    params = SystemParams(
        geometry=FabricGeometry(rows=4, cols=4), policy="rotation"
    )
    trace = run_workload("bitcount")
    obs.set_enabled(True)
    runner_dir = tmp_path / "sched"

    previous = set_schedule_cache_dir(runner_dir)
    try:
        clear_schedule_caches()
        obs.reset()
        shared_schedule(params, trace)
        first = obs.snapshot().counters
        assert first.get("schedule.disk_cache.misses") == 1
        assert first.get("schedule.walks") == 1

        clear_schedule_caches()
        obs.reset()
        shared_schedule(params, trace)
        second = obs.snapshot().counters
        assert second.get("schedule.disk_cache.hits") == 1
        assert "schedule.walks" not in second

        # Corrupt every cache file: load degrades to a recomputation
        # and telemetry records the recovery.
        for cached in runner_dir.glob("*.pkl"):
            cached.write_bytes(b"not a pickle")
        clear_schedule_caches()
        obs.reset()
        shared_schedule(params, trace)
        third = obs.snapshot().counters
        assert third.get("schedule.disk_cache.corrupt") == 1
        assert third.get("schedule.walks") == 1
    finally:
        set_schedule_cache_dir(previous)
        clear_schedule_caches()


@functools.lru_cache(maxsize=1)
def _bitcount_result():
    from repro import make_system

    return make_system("BE", policy="baseline").run_trace(
        run_workload("bitcount")
    )


def test_cgra_stats_config_cache_mirrors():
    result = _bitcount_result()
    assert result.cgra.config_cache_hits == result.cache_stats.hits
    assert result.cgra.config_cache_misses == result.cache_stats.misses
    assert result.cgra.config_cache_evictions == result.cache_stats.evictions
    assert result.cache_stats.hits > 0


def test_cgra_stats_mirrors_stay_out_of_field_serialization():
    """The mirrors are non-field attributes: golden experiment JSON
    (which serializes dataclass *fields*) must not change."""
    result = _bitcount_result()
    payload = to_jsonable(result.cgra)
    assert "config_cache_hits" not in payload
    assert "launches" in payload


def test_statsdump_reports_config_cache_lines():
    result = _bitcount_result()
    keys = {key for key, _value, _comment in stats_lines(result)}
    for expected in (
        "cfgcache.hits",
        "cfgcache.misses",
        "cfgcache.evictions",
        "cfgcache.insertions",
        "cfgcache.rejected",
        "cfgcache.blacklisted",
        "cfgcache.hit_rate",
    ):
        assert expected in keys


# ----------------------------------------------------------------------
# Structured logging


def test_kv_line_formatting():
    line = obs.log.kv_line(
        "event", {"a": 1, "b": 0.123456, "c": "two words", "d": "plain"}
    )
    assert line == "event a=1 b=0.1235 c='two words' d=plain"


def test_progress_eta():
    # The "repro" logger does not propagate (its own stderr handler),
    # so capture with a handler attached directly to it.
    records = []
    handler = logging.Handler()
    handler.emit = records.append
    logger = obs.log.get_logger()
    logger.addHandler(handler)
    try:
        obs.log.progress("tick", 2, 4, 10.0, extra="x")
    finally:
        logger.removeHandler(handler)
    assert len(records) == 1
    message = records[0].getMessage()
    assert message == "tick done=2/4 eta_s=10 elapsed_s=10 extra=x"


# ----------------------------------------------------------------------
# Golden guard: default-off telemetry changes no experiment output,
# and even a profiled run leaves stdout byte-identical.


def _fig1_stdout(json_dir) -> str:
    from repro.experiments.__main__ import main

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        assert main(["fig1", "--json", str(json_dir)]) == 0
    return "".join(
        line
        for line in stdout.getvalue().splitlines(keepends=True)
        if not line.startswith("[wrote ")
    )


def test_fig1_output_identical_with_telemetry_enabled(tmp_path):
    expected = (GOLDEN_DIR / "fig1.stdout.txt").read_text()
    expected_json = (GOLDEN_DIR / "fig1.json").read_bytes()

    assert _fig1_stdout(tmp_path / "off") == expected
    assert (tmp_path / "off" / "fig1.json").read_bytes() == expected_json

    # Drop the experiment-level result memo so the profiled run
    # actually re-executes the pipeline instead of replaying the memo.
    from repro.experiments.common import _run_suite_cached

    _run_suite_cached.cache_clear()
    obs.set_enabled(True)
    obs.tracing.start()
    assert _fig1_stdout(tmp_path / "on") == expected
    assert (tmp_path / "on" / "fig1.json").read_bytes() == expected_json
    # ... and the profiled run actually recorded the pipeline.
    assert obs.snapshot().counters.get("schedule.replays", 0) > 0
