"""Top-level CLI: ``python -m repro`` runs the experiment reproductions.

Delegates to :mod:`repro.experiments.__main__`; see that module for the
experiment names.
"""

from __future__ import annotations

import sys

from repro.experiments.__main__ import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
