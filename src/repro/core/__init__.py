"""Utilization-aware configuration allocation — the paper's contribution.

A *virtual configuration* produced by the DBT is anchored at origin
``(0, 0)``. Each launch, an :class:`AllocationPolicy` chooses the
*pivot* — the physical cell where the virtual origin lands — and the
:class:`ConfigurationAllocator` translates every op by that pivot with
wrap-around in both axes (Fig. 3), recording per-FU stress in a
:class:`UtilizationTracker`. Batched, the policy plans *whole launch
schedules* as :class:`SegmentPlan` sequences (see
:mod:`repro.core.policy` for the protocol and migration notes);
``next_pivot``-only policies keep working through
:class:`LegacyPolicyAdapter`.

Policies:

* :class:`BaselinePolicy` — pivot fixed at ``(0, 0)``: the traditional
  aging-unaware allocation (paper baseline).
* :class:`RotationPolicy` — the proposed approach: the pivot advances
  one step along a fabric-covering movement pattern per launch.
* :class:`RandomPolicy` — uniformly random pivots (upper bound on
  balancing without hardware pattern support).
* :class:`StressAwarePolicy` — the paper's future-work variant: picks
  the pivot that minimises the maximum accumulated stress.
"""

from repro.core.allocator import ConfigurationAllocator, PhysicalPlacement
from repro.core.patterns import (
    MOVEMENT_PATTERNS,
    column_snake_pattern,
    diagonal_pattern,
    movement_pattern,
    raster_pattern,
    snake_pattern,
)
from repro.core.policy import (
    PLAN_GRANULARITIES,
    AllocationPolicy,
    LegacyPolicyAdapter,
    ScheduleView,
    SegmentPlan,
    available_policies,
    make_policy,
)
from repro.core.random_policy import RandomPolicy
from repro.core.rotation import RotationPolicy
from repro.core.static import BaselinePolicy
from repro.core.static_remap import StaticRemapPolicy
from repro.core.stress_aware import StressAwarePolicy
from repro.core.utilization import UtilizationTracker, Weighting

__all__ = [
    "AllocationPolicy",
    "BaselinePolicy",
    "ConfigurationAllocator",
    "LegacyPolicyAdapter",
    "MOVEMENT_PATTERNS",
    "PLAN_GRANULARITIES",
    "PhysicalPlacement",
    "RandomPolicy",
    "RotationPolicy",
    "ScheduleView",
    "SegmentPlan",
    "StaticRemapPolicy",
    "StressAwarePolicy",
    "UtilizationTracker",
    "Weighting",
    "available_policies",
    "column_snake_pattern",
    "diagonal_pattern",
    "make_policy",
    "movement_pattern",
    "raster_pattern",
    "snake_pattern",
]
