"""Tests for configuration execution timing."""

import pytest

from repro.cgra.configuration import PlacedOp, VirtualConfiguration
from repro.cgra.datapath import (
    DatapathParams,
    configuration_cycles,
    execution_cycles,
    reconfiguration_cycles,
)
from repro.cgra.fabric import FabricGeometry
from repro.cgra.fu import FUKind


def config_with_depth(used_cols, rows=2, cols=32):
    ops = [
        PlacedOp(op="add", kind=FUKind.ALU, row=0, col=c, width=1,
                 trace_offset=c)
        for c in range(used_cols)
    ]
    return VirtualConfiguration(
        start_pc=0x1000,
        pc_path=tuple(0x1000 + 4 * i for i in range(used_cols)),
        ops=tuple(ops),
        n_instructions=used_cols,
        geometry_rows=rows,
        geometry_cols=cols,
    )


class TestExecutionCycles:
    def test_two_columns_per_cycle(self):
        params = DatapathParams()
        assert execution_cycles(params, config_with_depth(1)) == 1
        assert execution_cycles(params, config_with_depth(2)) == 1
        assert execution_cycles(params, config_with_depth(3)) == 2
        assert execution_cycles(params, config_with_depth(8)) == 4

    def test_reconfiguration_bandwidth(self):
        geometry = FabricGeometry(rows=2, cols=32, n_config_lines=4)
        assert reconfiguration_cycles(geometry, config_with_depth(4)) == 1
        assert reconfiguration_cycles(geometry, config_with_depth(5)) == 2
        assert reconfiguration_cycles(geometry, config_with_depth(32)) == 8


class TestTotalCycles:
    def test_warm_launch_hides_reconfig(self):
        geometry = FabricGeometry(rows=2, cols=32)
        params = DatapathParams()
        config = config_with_depth(8)
        warm = configuration_cycles(geometry, params, config)
        # 1 input ctx + 4 exec + 1 writeback
        assert warm == 6

    def test_cold_launch_pays_reconfig(self):
        geometry = FabricGeometry(rows=2, cols=32, n_config_lines=4)
        params = DatapathParams()
        config = config_with_depth(8)
        cold = configuration_cycles(geometry, params, config, cold=True)
        warm = configuration_cycles(geometry, params, config)
        assert cold == warm + 2  # ceil(8/4)

    def test_no_reconfig_overlap_pays_even_when_chained(self):
        geometry = FabricGeometry(rows=2, cols=32, n_config_lines=4)
        params = DatapathParams(overlap_reconfig=False)
        config = config_with_depth(8)
        chained_cold = configuration_cycles(
            geometry, params, config, cold=True, back_to_back=True
        )
        chained_warm = configuration_cycles(
            geometry, params, config, cold=False, back_to_back=True
        )
        assert chained_cold == chained_warm + 2  # ceil(8/4) streamed

    def test_chained_warm_launch_is_pure_execution(self):
        geometry = FabricGeometry(rows=2, cols=32)
        params = DatapathParams()
        config = config_with_depth(8)
        chained = configuration_cycles(
            geometry, params, config, cold=False, back_to_back=True
        )
        assert chained == 4  # ceil(8 cols / 2 per cycle), no I/O charge

    def test_longer_config_takes_longer(self):
        geometry = FabricGeometry(rows=2, cols=32)
        params = DatapathParams()
        short = configuration_cycles(geometry, params, config_with_depth(2))
        long = configuration_cycles(geometry, params, config_with_depth(20))
        assert long > short

    def test_cgra_beats_gpp_on_parallel_work(self):
        """A 2x8 block of ALU ops runs in far fewer cycles than 16 on
        the single-issue GPP -- the premise of the whole system."""
        ops = [
            PlacedOp(op="add", kind=FUKind.ALU, row=r, col=c, width=1,
                     trace_offset=r * 8 + c)
            for r in range(2) for c in range(8)
        ]
        config = VirtualConfiguration(
            start_pc=0x1000,
            pc_path=tuple(0x1000 + 4 * i for i in range(16)),
            ops=tuple(ops),
            n_instructions=16,
            geometry_rows=2,
            geometry_cols=32,
        )
        geometry = FabricGeometry(rows=2, cols=32)
        cycles = configuration_cycles(geometry, DatapathParams(), config)
        assert cycles < 16
