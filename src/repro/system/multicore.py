"""Multi-core TransRec scenarios (the paper's second future-work item).

Section VI: "We will also evaluate homogeneous and heterogeneous
multi-core scenarios." This module models a cluster of TransRec tiles
with a workload set distributed across them:

* **homogeneous** — every tile has the same fabric geometry;
* **heterogeneous** — tiles differ (e.g. one BE-class and one BU-class
  tile), and the dispatcher can bias hot workloads to big tiles.

Each tile keeps its own utilization tracker; the *cluster lifetime* is
set by the first tile to reach the delay threshold, so imbalanced
dispatch ages the cluster exactly the way imbalanced allocation ages a
single fabric — the same phenomenon one level up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aging.nbti import NBTIModel
from repro.cgra.fabric import FabricGeometry
from repro.errors import ConfigurationError
from repro.sim.trace import Trace
from repro.system.params import SystemParams
from repro.system.stats import SystemResult
from repro.system.transrec import TransRecSystem


@dataclass(frozen=True)
class TileSpec:
    """One core + fabric tile in the cluster."""

    name: str
    geometry: FabricGeometry
    policy: str = "rotation"

    def params(self) -> SystemParams:
        return SystemParams(geometry=self.geometry, policy=self.policy)


@dataclass
class TileResult:
    """Aggregate outcome for one tile."""

    spec: TileSpec
    results: list[SystemResult]

    @property
    def utilization(self) -> np.ndarray:
        counts = np.zeros(
            (self.spec.geometry.rows, self.spec.geometry.cols),
            dtype=np.int64,
        )
        launches = 0
        for result in self.results:
            counts += result.tracker.execution_counts
            launches += result.tracker.total_executions
        return counts / launches if launches else counts.astype(float)

    @property
    def worst_utilization(self) -> float:
        return float(self.utilization.max()) if self.results else 0.0

    @property
    def cycles(self) -> int:
        return sum(result.transrec_cycles for result in self.results)


@dataclass
class ClusterResult:
    """Outcome of one cluster run."""

    tiles: list[TileResult]
    model: NBTIModel

    @property
    def makespan_cycles(self) -> int:
        """Cycles of the busiest tile (tiles run in parallel)."""
        return max((tile.cycles for tile in self.tiles), default=0)

    @property
    def cluster_worst_utilization(self) -> float:
        return max((tile.worst_utilization for tile in self.tiles),
                   default=0.0)

    @property
    def cluster_lifetime_years(self) -> float:
        """First-tile-to-fail lifetime under the NBTI model."""
        worst = self.cluster_worst_utilization
        return self.model.years_to_degradation(worst)

    def tile_summary(self) -> list[tuple[str, int, float]]:
        """Per-tile (name, cycles, worst utilization)."""
        return [
            (tile.spec.name, tile.cycles, tile.worst_utilization)
            for tile in self.tiles
        ]


class Cluster:
    """A set of TransRec tiles plus a workload dispatcher."""

    def __init__(
        self, tiles: list[TileSpec], model: NBTIModel | None = None
    ) -> None:
        if not tiles:
            raise ConfigurationError("cluster needs at least one tile")
        self.tiles = tiles
        self.model = model if model is not None else NBTIModel()
        self._systems = [TransRecSystem(tile.params()) for tile in tiles]

    def run(
        self, traces: dict[str, Trace], dispatch: str = "round_robin"
    ) -> ClusterResult:
        """Distribute ``traces`` over the tiles and run them.

        Dispatch policies:

        * ``round_robin`` — cyclic assignment (homogeneous default);
        * ``longest_to_biggest`` — longest traces to the largest
          fabrics (a simple heterogeneous heuristic: big tiles both run
          hot code faster and spread its stress over more FUs);
        * ``balance_cycles`` — greedy makespan balancing by estimated
          length.
        """
        assignment = self._assign(traces, dispatch)
        tile_results: list[TileResult] = [
            TileResult(spec=spec, results=[]) for spec in self.tiles
        ]
        for tile_index, names in enumerate(assignment):
            system = self._systems[tile_index]
            for name in names:
                tile_results[tile_index].results.append(
                    system.run_trace(traces[name])
                )
        return ClusterResult(tiles=tile_results, model=self.model)

    def _assign(
        self, traces: dict[str, Trace], dispatch: str
    ) -> list[list[str]]:
        names = list(traces)
        buckets: list[list[str]] = [[] for _ in self.tiles]
        if dispatch == "round_robin":
            for index, name in enumerate(names):
                buckets[index % len(self.tiles)].append(name)
            return buckets
        if dispatch == "longest_to_biggest":
            by_length = sorted(
                names, key=lambda n: len(traces[n]), reverse=True
            )
            tile_order = sorted(
                range(len(self.tiles)),
                key=lambda i: self.tiles[i].geometry.n_cells,
                reverse=True,
            )
            for index, name in enumerate(by_length):
                buckets[tile_order[index % len(tile_order)]].append(name)
            return buckets
        if dispatch == "balance_cycles":
            loads = [0] * len(self.tiles)
            for name in sorted(
                names, key=lambda n: len(traces[n]), reverse=True
            ):
                lightest = loads.index(min(loads))
                buckets[lightest].append(name)
                loads[lightest] += len(traces[name])
            return buckets
        raise ConfigurationError(f"unknown dispatch policy {dispatch!r}")


def homogeneous_cluster(
    n_tiles: int, rows: int = 2, cols: int = 16, policy: str = "rotation"
) -> Cluster:
    """N identical tiles (the paper's homogeneous scenario)."""
    if n_tiles < 1:
        raise ConfigurationError("n_tiles must be >= 1")
    tiles = [
        TileSpec(
            name=f"tile{i}",
            geometry=FabricGeometry(rows=rows, cols=cols),
            policy=policy,
        )
        for i in range(n_tiles)
    ]
    return Cluster(tiles)


def heterogeneous_cluster(policy: str = "rotation") -> Cluster:
    """A little.BIG-style pair: one BE tile and one BU tile."""
    return Cluster(
        [
            TileSpec("little", FabricGeometry(rows=2, cols=16), policy),
            TileSpec("big", FabricGeometry(rows=8, cols=32), policy),
        ]
    )
