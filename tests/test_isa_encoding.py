"""Tests (incl. round-trip properties) for RV32IM binary encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AssemblyError, SimulationError
from repro.isa.assembler import assemble
from repro.isa.encoding import decode, decode_words, encode, encode_program
from repro.isa.instructions import Instruction

regs = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)
shamt = st.integers(min_value=0, max_value=31)
imm20 = st.integers(min_value=0, max_value=(1 << 20) - 1)


class TestKnownEncodings:
    """Golden values cross-checked against the RISC-V spec examples."""

    def test_addi(self):
        # addi x1, x0, 1  ->  0x00100093
        assert encode(Instruction("addi", rd=1, rs1=0, imm=1)) == 0x00100093

    def test_add(self):
        # add x3, x1, x2  ->  0x002081B3
        assert encode(Instruction("add", rd=3, rs1=1, rs2=2)) == 0x002081B3

    def test_sub(self):
        # sub x5, x6, x7 -> 0x407302B3
        assert encode(Instruction("sub", rd=5, rs1=6, rs2=7)) == 0x407302B3

    def test_lw(self):
        # lw x5, 8(x2) -> 0x00812283
        assert encode(Instruction("lw", rd=5, rs1=2, imm=8)) == 0x00812283

    def test_sw(self):
        # sw x5, 8(x2) -> 0x00512423
        assert encode(Instruction("sw", rs1=2, rs2=5, imm=8)) == 0x00512423

    def test_ecall(self):
        assert encode(Instruction("ecall")) == 0x00000073

    def test_ebreak(self):
        assert encode(Instruction("ebreak")) == 0x00100073

    def test_mul_uses_m_extension_funct7(self):
        word = encode(Instruction("mul", rd=1, rs1=2, rs2=3))
        assert (word >> 25) == 0b0000001


class TestValidation:
    def test_immediate_overflow(self):
        with pytest.raises(AssemblyError):
            encode(Instruction("addi", rd=1, rs1=0, imm=5000))

    def test_odd_branch_offset(self):
        with pytest.raises(AssemblyError):
            encode(Instruction("beq", rs1=0, rs2=0, imm=3))

    def test_decode_garbage(self):
        with pytest.raises(SimulationError):
            decode(0xFFFFFFFF)

    def test_decode_misaligned_blob(self):
        with pytest.raises(SimulationError):
            decode_words(b"\x13\x00\x00")


def assert_round_trip(ins: Instruction):
    decoded = decode(encode(ins))
    assert decoded.op == ins.op
    assert (decoded.rd or 0) == (ins.rd or 0)
    assert (decoded.rs1 or 0) == (ins.rs1 or 0)
    if ins.spec.fmt.value == "r":
        assert (decoded.rs2 or 0) == (ins.rs2 or 0)
    if ins.imm is not None:
        assert decoded.imm == ins.imm


class TestRoundTripProperties:
    @given(rd=regs, rs1=regs, rs2=regs)
    def test_r_type(self, rd, rs1, rs2):
        for op in ("add", "sub", "xor", "sltu", "mul", "divu", "rem"):
            assert_round_trip(Instruction(op, rd=rd, rs1=rs1, rs2=rs2))

    @given(rd=regs, rs1=regs, imm=imm12)
    def test_i_type(self, rd, rs1, imm):
        for op in ("addi", "andi", "xori", "sltiu"):
            assert_round_trip(Instruction(op, rd=rd, rs1=rs1, imm=imm))

    @given(rd=regs, rs1=regs, imm=shamt)
    def test_shifts(self, rd, rs1, imm):
        for op in ("slli", "srli", "srai"):
            assert_round_trip(Instruction(op, rd=rd, rs1=rs1, imm=imm))

    @given(rd=regs, rs1=regs, imm=imm12)
    def test_loads_jalr(self, rd, rs1, imm):
        for op in ("lw", "lh", "lb", "lbu", "lhu", "jalr"):
            assert_round_trip(Instruction(op, rd=rd, rs1=rs1, imm=imm))

    @given(rs1=regs, rs2=regs, imm=imm12)
    def test_stores(self, rs1, rs2, imm):
        for op in ("sw", "sh", "sb"):
            assert_round_trip(Instruction(op, rs1=rs1, rs2=rs2, imm=imm))

    @given(
        rs1=regs, rs2=regs,
        imm=st.integers(min_value=-2048, max_value=2047).map(lambda v: v * 2),
    )
    def test_branches(self, rs1, rs2, imm):
        for op in ("beq", "bne", "blt", "bgeu"):
            assert_round_trip(Instruction(op, rs1=rs1, rs2=rs2, imm=imm))

    @given(rd=regs, imm=imm20)
    def test_u_type(self, rd, imm):
        assert_round_trip(Instruction("lui", rd=rd, imm=imm))
        assert_round_trip(Instruction("auipc", rd=rd, imm=imm))

    @given(
        rd=regs,
        imm=st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1).map(
            lambda v: v * 2
        ),
    )
    def test_jal(self, rd, imm):
        assert_round_trip(Instruction("jal", rd=rd, imm=imm))


class TestProgramSerialisation:
    def test_whole_workload_round_trips(self):
        from repro.workloads.suite import get_workload

        program = get_workload("sha").program()
        blob = encode_program(program)
        assert len(blob) == 4 * len(program)
        decoded = decode_words(blob)
        for original, restored in zip(program.instructions, decoded):
            assert restored.op == original.op
            assert (restored.imm or 0) == (original.imm or 0)

    def test_every_suite_program_encodes(self):
        from repro.workloads.suite import all_workloads

        for workload in all_workloads():
            blob = encode_program(workload.program())
            assert len(blob) % 4 == 0
