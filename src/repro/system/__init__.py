"""Full-system TransRec simulation: GPP + DBT + config cache + CGRA.

:class:`TransRecSystem` consumes a committed trace and produces cycle
counts, energy, utilization maps and cache statistics for both the
stand-alone GPP and the accelerated system, under a chosen allocation
policy. :mod:`repro.system.scenarios` provides the paper's BE/BP/BU
design points.
"""

from repro.system.params import SystemParams
from repro.system.scenarios import SCENARIOS, Scenario, make_system
from repro.system.stats import SystemResult
from repro.system.transrec import TransRecSystem

__all__ = [
    "SCENARIOS",
    "Scenario",
    "SystemParams",
    "SystemResult",
    "TransRecSystem",
    "make_system",
]
