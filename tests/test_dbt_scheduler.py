"""Tests for the greedy first-fit scheduler."""

import pytest

from repro.cgra.fabric import FabricGeometry
from repro.dbt.scheduler import SchedulerState

from tests.support import rec, reset_rec_pcs


def setup_function(_):
    reset_rec_pcs()


def state(rows=2, cols=8):
    return SchedulerState(FabricGeometry(rows=rows, cols=cols))


class TestPlacement:
    def test_independent_ops_fill_rows_first(self):
        s = state(rows=2, cols=8)
        first = s.try_place(rec("add", rd=5, rs1=1, rs2=2), 0)
        second = s.try_place(rec("add", rd=6, rs1=3, rs2=4), 1)
        assert (first.row, first.col) == (0, 0)
        assert (second.row, second.col) == (1, 0)

    def test_dependent_op_waits_for_producer(self):
        s = state()
        producer = s.try_place(rec("add", rd=5, rs1=1, rs2=2), 0)
        consumer = s.try_place(rec("add", rd=6, rs1=5, rs2=5), 1)
        assert consumer.col == producer.end_col
        assert consumer.row == 0  # row 0 free again at that column

    def test_chain_extends_left_to_right(self):
        s = state(rows=2, cols=8)
        cols = []
        for i in range(4):
            op = s.try_place(rec("addi", rd=5, rs1=5, imm=1), i)
            cols.append(op.col)
        assert cols == [0, 1, 2, 3]

    def test_top_left_bias(self):
        """Independent work concentrates on row 0 and early columns --
        the phenomenon behind Fig. 1."""
        s = state(rows=4, cols=8)
        placements = [
            s.try_place(rec("add", rd=0, rs1=1, rs2=2), i) for i in range(3)
        ]
        assert [p.col for p in placements] == [0, 0, 0]
        assert [p.row for p in placements] == [0, 1, 2]

    def test_fabric_full_returns_none(self):
        s = state(rows=1, cols=2)
        assert s.try_place(rec("add", rd=0, rs1=1, rs2=2), 0) is not None
        assert s.try_place(rec("add", rd=0, rs1=1, rs2=2), 1) is not None
        assert s.try_place(rec("add", rd=0, rs1=1, rs2=2), 2) is None

    def test_failed_placement_leaves_state_clean(self):
        s = state(rows=1, cols=2)
        s.try_place(rec("add", rd=0, rs1=1, rs2=2), 0)
        before = s.placed_cells
        assert s.try_place(rec("lw", rd=5, rs1=1, mem_addr=0x100), 1) is None
        assert s.placed_cells == before

    def test_unmappable_class_returns_none(self):
        s = state()
        assert s.try_place(rec("div", rd=5, rs1=1, rs2=2), 0) is None
        assert s.try_place(rec("ecall"), 0) is None


class TestMemoryOps:
    def test_load_spans_four_columns(self):
        s = state(rows=2, cols=8)
        load = s.try_place(rec("lw", rd=5, rs1=1, mem_addr=0x100), 0)
        assert load.width == 4
        assert load.cells() == ((0, 0), (0, 1), (0, 2), (0, 3))

    def test_load_port_pipelined_one_issue_per_cycle(self):
        s = state(rows=2, cols=16)
        first = s.try_place(rec("lw", rd=5, rs1=1, mem_addr=0x100), 0)
        second = s.try_place(rec("lw", rd=6, rs1=1, mem_addr=0x200), 1)
        third = s.try_place(rec("lw", rd=7, rs1=1, mem_addr=0x300), 2)
        # One read port, pipelined: a new load can issue every cycle
        # (= 2 columns), overlapping the previous load's latency.
        assert second.col == first.col + 2
        assert third.col == second.col + 2

    def test_load_and_store_ports_are_independent(self):
        s = state(rows=2, cols=16)
        load = s.try_place(rec("lw", rd=5, rs1=1, mem_addr=0x100), 0)
        store = s.try_place(rec("sw", rs1=2, rs2=3, mem_addr=0x200), 1)
        # Different ports and different addresses: may overlap in columns.
        assert store.col < load.end_col

    def test_raw_through_memory_serialises(self):
        s = state(rows=2, cols=16)
        store = s.try_place(rec("sw", rs1=1, rs2=2, mem_addr=0x100), 0)
        load = s.try_place(rec("lw", rd=5, rs1=1, mem_addr=0x100), 1)
        assert load.col >= store.end_col

    def test_war_through_memory_serialises(self):
        s = state(rows=2, cols=16)
        load = s.try_place(rec("lw", rd=5, rs1=1, mem_addr=0x100), 0)
        store = s.try_place(rec("sw", rs1=1, rs2=2, mem_addr=0x100), 1)
        assert store.col >= load.end_col

    def test_loads_to_same_word_may_overlap(self):
        s = state(rows=2, cols=16)
        first = s.try_place(rec("lw", rd=5, rs1=1, mem_addr=0x100), 0)
        second = s.try_place(rec("lw", rd=6, rs1=1, mem_addr=0x100), 1)
        # Ordered only by the pipelined read port, not by dependence.
        assert second.col == first.col + 2

    def test_byte_accesses_same_word_conflict(self):
        s = state(rows=2, cols=16)
        store = s.try_place(rec("sb", rs1=1, rs2=2, mem_addr=0x101), 0)
        load = s.try_place(rec("lb", rd=5, rs1=1, mem_addr=0x102), 1)
        assert load.col >= store.end_col


class TestRowPolicies:
    def test_round_robin_spreads_rows(self):
        s = SchedulerState(
            FabricGeometry(rows=4, cols=8), row_policy="round_robin"
        )
        rows = [
            s.try_place(rec("add", rd=0, rs1=1, rs2=2), i).row
            for i in range(4)
        ]
        assert sorted(rows) == [0, 1, 2, 3]

    def test_round_robin_cannot_spread_columns(self):
        """A dependence chain stays column-anchored whatever the row
        order — the structural limit of scheduler-level balancing."""
        s = SchedulerState(
            FabricGeometry(rows=4, cols=8), row_policy="round_robin"
        )
        cols = [
            s.try_place(rec("addi", rd=5, rs1=5, imm=1), i).col
            for i in range(4)
        ]
        assert cols == [0, 1, 2, 3]

    def test_unknown_row_policy_rejected(self):
        with pytest.raises(ValueError):
            SchedulerState(FabricGeometry(rows=2, cols=8), row_policy="zigzag")


class TestConstants:
    def test_constant_generator_placement(self):
        s = state()
        op = s.try_place_constant("jal", rd=1, trace_offset=0)
        assert (op.row, op.col, op.width) == (0, 0, 1)
        consumer = s.try_place(rec("add", rd=5, rs1=1, rs2=1), 1)
        assert consumer.col >= op.end_col

    def test_constant_full_fabric(self):
        s = state(rows=1, cols=2)
        s.try_place(rec("add", rd=0, rs1=1, rs2=2), 0)
        s.try_place(rec("add", rd=0, rs1=1, rs2=2), 1)
        assert s.try_place_constant("jal", rd=1, trace_offset=2) is None
