"""Workload container and suite registry."""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from functools import lru_cache

from repro import obs
from repro.errors import ConfigurationError, SimulationError
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.sim.cpu import CPU
from repro.sim.trace import Trace

#: Module name (under repro.workloads) of every suite member.
_SUITE_MODULES = (
    "bitcount",
    "crc32",
    "dijkstra",
    "qsort",
    "rijndael",
    "sha",
    "stringsearch",
    "susan_smoothing",
    "susan_edges",
    "susan_corners",
)


@dataclass(frozen=True)
class Workload:
    """One benchmark kernel.

    Attributes:
        name: suite identifier.
        category: MiBench category (automotive/network/security/...).
        description: one-line summary of the kernel.
        source: assembly text.
        expected_checksum: value the kernel must return in ``a0``
            (computed by the Python reference implementation).
    """

    name: str
    category: str
    description: str
    source: str
    expected_checksum: int

    def program(self) -> Program:
        """Assemble the kernel."""
        return assemble(self.source, name=self.name)


def workload_names() -> tuple[str, ...]:
    """Names of all suite members, in canonical order."""
    return _SUITE_MODULES


@lru_cache(maxsize=None)
def get_workload(name: str) -> Workload:
    """Build one workload by name."""
    if name not in _SUITE_MODULES:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {list(_SUITE_MODULES)}"
        )
    module = importlib.import_module(f"repro.workloads.{name}")
    return module.build()


def all_workloads() -> tuple[Workload, ...]:
    """All suite members, in canonical order."""
    return tuple(get_workload(name) for name in _SUITE_MODULES)


@lru_cache(maxsize=None)
def run_workload(name: str) -> Trace:
    """Execute one workload, verify its checksum, return the trace.

    Traces are design-independent (the functional behaviour does not
    depend on the CGRA), so they are cached per process and shared by
    every experiment.

    Raises:
        SimulationError: if the kernel's checksum does not match its
            Python reference — a workload-porting bug, never expected.
    """
    workload = get_workload(name)
    with obs.span("workload.trace", workload=name):
        result = CPU(workload.program()).run()
    actual = result.exit_code & 0xFFFFFFFF
    expected = workload.expected_checksum & 0xFFFFFFFF
    if actual != expected:
        raise SimulationError(
            f"workload {name!r} checksum mismatch: "
            f"expected {expected:#x}, got {actual:#x}"
        )
    return result.trace


def suite_traces() -> dict[str, Trace]:
    """Verified traces for the whole suite (cached)."""
    return {name: run_workload(name) for name in _SUITE_MODULES}
