"""Text rendering of the pivot movement and wrap-around (paper Fig. 3).

Frames show where a virtual configuration's cells land on the physical
fabric launch by launch — the visual the paper uses to explain the
approach. Used by ``examples/visualize_rotation.py`` and handy when
debugging new movement patterns.
"""

from __future__ import annotations

from repro.cgra.configuration import VirtualConfiguration
from repro.cgra.fabric import FabricGeometry
from repro.core.allocator import PhysicalPlacement


def render_placement(
    geometry: FabricGeometry,
    placement: PhysicalPlacement,
    launch_index: int | None = None,
) -> str:
    """One frame: ``#`` = occupied cell, ``P`` = the pivot, ``.`` idle.

    Row 1 prints at the bottom, matching the paper's figures.
    """
    occupied = set(placement.cells)
    lines = []
    if launch_index is not None:
        lines.append(
            f"launch {launch_index}: pivot=(R{placement.pivot[0] + 1},"
            f" C{placement.pivot[1] + 1})"
        )
    for row in range(geometry.rows - 1, -1, -1):
        cells = []
        for col in range(geometry.cols):
            if (row, col) == placement.pivot:
                cells.append("P")
            elif (row, col) in occupied:
                cells.append("#")
            else:
                cells.append(".")
        lines.append(f"R{row + 1} " + " ".join(cells))
    return "\n".join(lines)


def render_movement_sequence(
    geometry: FabricGeometry,
    config: VirtualConfiguration,
    allocator,
    launches: int,
) -> str:
    """Render ``launches`` consecutive frames of one configuration.

    ``allocator`` is a :class:`~repro.core.allocator.ConfigurationAllocator`;
    its policy state advances as a side effect (as in a real run).
    """
    frames = []
    for index in range(launches):
        placement = allocator.allocate(config)
        frames.append(render_placement(geometry, placement, index))
    return "\n\n".join(frames)


def wrap_demonstration(geometry: FabricGeometry) -> str:
    """The Fig. 3c moment: a pivot deep enough that the configuration
    wraps around both fabric edges."""
    from repro.cgra.configuration import PlacedOp
    from repro.cgra.fu import FUKind
    from repro.core.allocator import ConfigurationAllocator
    from repro.core.policy import make_policy

    ops = tuple(
        PlacedOp("add", FUKind.ALU, row=r, col=c, width=1,
                 trace_offset=r * 2 + c)
        for r in range(2)
        for c in range(2)
    )
    config = VirtualConfiguration(
        start_pc=0x1000,
        pc_path=tuple(0x1000 + 4 * i for i in range(4)),
        ops=ops,
        n_instructions=4,
        geometry_rows=geometry.rows,
        geometry_cols=geometry.cols,
    )

    class _CornerPolicy:
        name = "corner"

        def bind(self, geometry_):
            pass

        def next_pivot(self, config_, tracker):
            return (geometry.rows - 1, geometry.cols - 1)

        def observe(self, config_, pivot):
            pass

    allocator = ConfigurationAllocator(geometry, _CornerPolicy())
    placement = allocator.allocate(config)
    header = (
        "wrap-around: a 2x2 block anchored at the far corner folds back "
        "onto row 1 / column 1"
    )
    return header + "\n" + render_placement(geometry, placement)
