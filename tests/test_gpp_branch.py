"""Tests for the branch predictors and their registry."""

import pytest

from repro.errors import ConfigurationError
from repro.gpp.branch import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BTFNPredictor,
    GSharePredictor,
    available_predictors,
    make_predictor,
    predictor_class,
)


class TestStaticPredictors:
    def test_btfn(self):
        predictor = BTFNPredictor()
        assert predictor.predict(0x1000, -8)       # backward -> taken
        assert not predictor.predict(0x1000, 12)   # forward -> not taken

    def test_always_taken(self):
        predictor = AlwaysTakenPredictor()
        assert predictor.predict(0x1000, -8)
        assert predictor.predict(0x1000, 8)


class TestBimodal:
    def test_initially_weakly_taken(self):
        predictor = BimodalPredictor(entries=16)
        assert predictor.predict(0x1000, 4)

    def test_learns_not_taken(self):
        predictor = BimodalPredictor(entries=16)
        pc = 0x2000
        predictor.update(pc, False)
        predictor.update(pc, False)
        assert not predictor.predict(pc, 4)

    def test_saturates(self):
        predictor = BimodalPredictor(entries=16)
        pc = 0x2000
        for _ in range(10):
            predictor.update(pc, True)
        predictor.update(pc, False)
        assert predictor.predict(pc, 4)  # one not-taken cannot flip it

    def test_aliasing_uses_distinct_entries(self):
        predictor = BimodalPredictor(entries=16)
        a, b = 0x1000, 0x1004
        predictor.update(a, False)
        predictor.update(a, False)
        assert predictor.predict(b, 4)  # b untouched

    def test_reset(self):
        predictor = BimodalPredictor(entries=16)
        predictor.update(0x1000, False)
        predictor.update(0x1000, False)
        predictor.reset()
        assert predictor.predict(0x1000, 4)

    def test_bad_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            BimodalPredictor(entries=12)


class TestGShare:
    def test_initially_weakly_taken(self):
        predictor = GSharePredictor(entries=16)
        assert predictor.predict(0x1000, 4)

    def test_learns_per_history_path(self):
        """The same pc can predict differently under different global
        histories — the property bimodal cannot express."""
        predictor = GSharePredictor(entries=64, history_bits=2)
        pc = 0x3000
        # Train: after history 0b00 the branch is not taken, after
        # history 0b11 it is taken.
        for _ in range(4):
            predictor._history = 0b00
            predictor.update(pc, False)
            predictor._history = 0b11
            predictor.update(pc, True)
        predictor._history = 0b00
        assert not predictor.predict(pc, 4)
        predictor._history = 0b11
        assert predictor.predict(pc, 4)

    def test_history_shifts_in_outcomes(self):
        predictor = GSharePredictor(entries=16, history_bits=4)
        predictor.update(0x1000, True)
        predictor.update(0x1004, False)
        predictor.update(0x1008, True)
        assert predictor._history == 0b101

    def test_history_bounded_by_history_bits(self):
        predictor = GSharePredictor(entries=16, history_bits=3)
        for _ in range(20):
            predictor.update(0x1000, True)
        assert predictor._history == 0b111

    def test_reset_clears_history_and_counters(self):
        predictor = GSharePredictor(entries=16)
        predictor.update(0x1000, False)
        predictor.update(0x1000, False)
        predictor.reset()
        assert predictor._history == 0
        assert predictor.predict(0x1000, 4)

    def test_bad_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            GSharePredictor(entries=100)

    def test_bad_history_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            GSharePredictor(entries=16, history_bits=0)


class TestRegistry:
    def test_all_shipped_predictors_registered(self):
        assert available_predictors() == (
            "bimodal",
            "btfn",
            "gshare",
            "taken",
        )

    def test_make_predictor_dispatches(self):
        assert isinstance(make_predictor("btfn"), BTFNPredictor)
        assert isinstance(make_predictor("taken"), AlwaysTakenPredictor)
        assert isinstance(make_predictor("bimodal"), BimodalPredictor)
        assert isinstance(make_predictor("gshare"), GSharePredictor)

    def test_make_predictor_forwards_kwargs(self):
        predictor = make_predictor("gshare", entries=32, history_bits=4)
        assert predictor._mask == 31
        assert predictor._history_mask == 0b1111

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown predictor"):
            make_predictor("perceptron")
        with pytest.raises(ConfigurationError, match="unknown predictor"):
            predictor_class("perceptron")

    def test_bad_kwargs_reported_as_configuration_error(self):
        with pytest.raises(ConfigurationError, match="bad arguments"):
            make_predictor("btfn", entries=16)

    def test_timing_module_reexport(self):
        """GPPParams docs point at the registry via repro.gpp.timing."""
        from repro.gpp.timing import make_predictor as timing_make

        assert timing_make is make_predictor
