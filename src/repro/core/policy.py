"""Allocation-policy interface and registry."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cgra.configuration import VirtualConfiguration
from repro.cgra.fabric import FabricGeometry
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.utilization import UtilizationTracker


class AllocationPolicy:
    """Chooses the pivot cell for each configuration launch.

    Lifecycle: the :class:`~repro.core.allocator.ConfigurationAllocator`
    calls :meth:`bind` once with the fabric geometry, then
    :meth:`next_pivot` before every launch and :meth:`observe` after the
    launch has been recorded.
    """

    #: Registry key; subclasses override.
    name = "abstract"

    def bind(self, geometry: FabricGeometry) -> None:
        """Attach the policy to a fabric; resets internal state."""
        self.geometry = geometry

    def next_pivot(
        self, config: VirtualConfiguration, tracker: "UtilizationTracker"
    ) -> tuple[int, int]:
        """Pivot ``(row, col)`` for the upcoming launch of ``config``.

        ``tracker`` exposes the accumulated per-FU stress for policies
        that adapt to run-time aging information.
        """
        raise NotImplementedError

    def observe(
        self, config: VirtualConfiguration, pivot: tuple[int, int]
    ) -> None:
        """Hook called after a launch has been recorded (optional)."""

    def describe(self) -> str:
        """One-line human-readable description."""
        return self.name


_REGISTRY: dict[str, type[AllocationPolicy]] = {}


def register_policy(cls: type[AllocationPolicy]) -> type[AllocationPolicy]:
    """Class decorator adding a policy to the ``make_policy`` registry."""
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"duplicate policy name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def make_policy(name: str, **kwargs) -> AllocationPolicy:
    """Instantiate a registered policy by name.

    Examples:
        >>> make_policy("baseline").name
        'baseline'
        >>> make_policy("rotation", pattern="raster").pattern_name
        'raster'
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown policy {name!r}; available: {sorted(_REGISTRY)}"
        )
    return cls(**kwargs)


def available_policies() -> tuple[str, ...]:
    """Names of all registered policies, sorted."""
    return tuple(sorted(_REGISTRY))
