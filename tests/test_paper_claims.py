"""Acceptance tests for the paper's enumerated claims.

One test per claim made in the abstract and introduction, evaluated on
the full verified workload suite. These are the reproduction's
contract: if any of these fails, the repository no longer reproduces
the paper.
"""

import pytest

from repro.aging.lifetime import lifetime_improvement
from repro.aging.nbti import NBTIModel
from repro.cgra.fabric import FabricGeometry
from repro.core.utilization import Weighting
from repro.experiments.common import run_suite
from repro.hw.area import CGRAAreaModel
from repro.hw.timing_model import ColumnTimingModel


@pytest.fixture(scope="module")
def be_runs():
    return {
        policy: run_suite(rows=2, cols=16, policy=policy)
        for policy in ("baseline", "rotation")
    }


class TestAbstractClaims:
    """Abstract: '2.2x lifetime improvement with negligible performance
    overheads and less than 10% increase in area'."""

    def test_lifetime_improvement_band(self, be_runs):
        model = NBTIModel()
        improvement = lifetime_improvement(
            model,
            be_runs["baseline"].max_utilization(),
            be_runs["rotation"].max_utilization(),
        )
        assert 1.8 <= improvement <= 3.0  # paper: 2.2x (abstract), 2.29x

    def test_negligible_performance_overhead(self, be_runs):
        """The rotation must not change cycle counts at all — the
        hardware movement happens in the configuration path."""
        for name, baseline in be_runs["baseline"].results.items():
            rotated = be_runs["rotation"].results[name]
            assert rotated.transrec_cycles == baseline.transrec_cycles

    def test_under_ten_percent_area(self):
        model = CGRAAreaModel(FabricGeometry(rows=2, cols=16))
        assert model.overhead_fraction() < 0.10
        assert model.cell_overhead_fraction() < 0.10


class TestIntroductionClaims:
    def test_corner_fu_aging_gap(self):
        """Intro: corner FUs 'can age up to 10x faster'. Under Eq. 1
        lifetime scales with 1/u, so the utilization gap between hot
        and cold FUs must span an order of magnitude."""
        run = run_suite(rows=4, cols=8, policy="baseline")
        util = run.utilization(Weighting.CONFIGS)
        hot = util.max()
        # Exclude never-used FUs, as the paper's 1%-FU still ages.
        cold = util[util > 0].min()
        assert hot / cold >= 10.0

    def test_uniform_distribution_goal(self, be_runs):
        """Proposed approach: 'the utilization should be uniformly
        distributed across the CGRA's FUs'."""
        util = be_runs["rotation"].utilization(Weighting.EXECUTIONS)
        assert util.min() / util.max() > 0.9


class TestSectionVClaims:
    def test_maximum_utilization_drop(self, be_runs):
        """Section V-A: maximum utilization drops from 94.5% to 41.2%
        (ours: ~100% to ~fabric mean)."""
        baseline_max = be_runs["baseline"].max_utilization()
        proposed_max = be_runs["rotation"].max_utilization()
        assert baseline_max > 0.9
        assert proposed_max < 0.6
        assert proposed_max < baseline_max / 1.8

    def test_larger_designs_better_improvements(self):
        """Section V-A: 'Larger designs lead to even better improvements
        in the product's lifetime'."""
        model = NBTIModel()
        improvements = []
        for rows, cols in ((2, 16), (4, 32), (8, 32)):
            baseline = run_suite(rows=rows, cols=cols, policy="baseline")
            proposed = run_suite(rows=rows, cols=cols, policy="rotation")
            improvements.append(
                lifetime_improvement(
                    model,
                    baseline.max_utilization(),
                    proposed.max_utilization(),
                )
            )
        assert improvements[0] < improvements[1] < improvements[2]
        # Section VI: 'increases the lifetime of the design by
        # 2.29x-7.97x for different design sizes'.
        assert improvements[0] > 1.8
        assert improvements[2] > 6.0

    def test_same_minimum_latency(self):
        """Section V-B: 'both the baseline and the proposed version were
        able to reach the same minimum latency of 120ps'."""
        timing = ColumnTimingModel(FabricGeometry(rows=2, cols=16))
        assert timing.baseline().column_latency_ps == 120.0
        assert timing.latency_unchanged()


class TestConclusionClaims:
    def test_stress_to_recovery_balancing(self, be_runs):
        """Conclusion: the strategy 'balances the stress-to-recovery
        rates of the individual FUs'. Under EXECUTIONS weighting the
        stress duty of every FU must converge."""
        util = be_runs["rotation"].utilization(Weighting.EXECUTIONS)
        assert util.std() / util.mean() < 0.05  # <5% relative spread
