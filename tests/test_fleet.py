"""Fleet subsystem gates: spec determinism, store merge laws,
checkpoint bit-identity, and runner resume.

The invariants pinned here are the ones the fleet service's
correctness rests on (see :mod:`repro.fleet`):

* device traffic mixes are **sharding-independent** — the same fleet
  expands to the same devices whether it runs as 1 shard or 1000;
* shard-record merging is **order- and duplicate-insensitive** and
  partitions **associatively** (counts exactly, float sums to
  tolerance);
* streaming percentiles agree with dense ``np.percentile`` within the
  histogram's documented ~2.3% bin-ratio bound;
* the store survives torn/corrupt/foreign lines; checkpoints
  round-trip tracker state **bit-exactly** and fail safe when damaged;
* a killed-and-resumed run merges **bit-identically** to an
  uninterrupted one.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.aging.lifetime import device_lifetimes, survival_counts
from repro.aging.nbti import NBTIModel
from repro.campaign.spec import PolicySpec
from repro.cgra.fabric import FabricGeometry
from repro.core.utilization import UtilizationTracker
from repro.errors import ConfigurationError
from repro.fleet import (
    GENERATION_BLOCK,
    FleetRunner,
    FleetSpec,
    ResultStore,
    ShardRecord,
    lifetime_histogram,
    load_tracker,
    merge_records,
    save_tracker,
)
from repro.fleet.checkpoint import CHECKPOINT_VERSION
from repro.fleet.store import HIST_BINS, HIST_HI, HIST_LO
from repro.system.scenarios import (
    TRAFFIC_SCENARIOS,
    TrafficScenario,
    traffic_scenario,
)
from repro.workloads.suite import workload_names

MISSION = (1.0, 3.0, 10.0)


def _spec(**overrides) -> FleetSpec:
    defaults = dict(
        name="test_fleet",
        rows=4,
        cols=4,
        policies=(
            PolicySpec.make("baseline"),
            PolicySpec.make("stress_aware"),
        ),
        scenario="telemetry_node",
        n_devices=256,
        devices_per_shard=64,
        seed=5,
        mission_years=MISSION,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


# -- traffic scenarios -----------------------------------------------------


def test_traffic_scenarios_registered_and_looked_up():
    assert set(TRAFFIC_SCENARIOS) >= {
        "uniform",
        "crypto_gateway",
        "edge_vision",
        "telemetry_node",
        "navigation",
    }
    for name, scenario in TRAFFIC_SCENARIOS.items():
        assert traffic_scenario(name) is scenario
    with pytest.raises(ConfigurationError, match="unknown traffic scenario"):
        traffic_scenario("nope")


def test_traffic_scenario_validation():
    with pytest.raises(ConfigurationError):
        TrafficScenario(name="bad", description="", mix={"nope": 1.0})
    with pytest.raises(ConfigurationError):
        TrafficScenario(name="bad", description="", mix={"sha": -1.0})
    with pytest.raises(ConfigurationError):
        TrafficScenario(name="bad", description="", mix={"sha": 0.0})
    with pytest.raises(ConfigurationError):
        TrafficScenario(name="bad", description="", concentration=0.0)


def test_base_weights_normalized_in_suite_order():
    suite = workload_names()
    for scenario in TRAFFIC_SCENARIOS.values():
        weights = scenario.base_weights()
        assert len(weights) == len(scenario.workloads)
        assert sum(weights) == pytest.approx(1.0)
        # workloads come out in canonical suite order
        order = [suite.index(name) for name in scenario.workloads]
        assert order == sorted(order)
    assert traffic_scenario("uniform").workloads == suite


# -- fleet spec ------------------------------------------------------------


def test_fleet_spec_validation():
    with pytest.raises(ConfigurationError):
        _spec(rows=0)
    with pytest.raises(ConfigurationError):
        _spec(policies=())
    with pytest.raises(ConfigurationError):
        _spec(n_devices=0)
    with pytest.raises(ConfigurationError):
        _spec(mission_years=(3.0, 1.0))
    with pytest.raises(ConfigurationError):
        _spec(mission_years=(-1.0, 1.0))
    with pytest.raises(ConfigurationError):
        _spec(scenario="nope")
    with pytest.raises(ConfigurationError, match="duplicate"):
        _spec(
            policies=(PolicySpec.make("baseline"), PolicySpec.make("baseline"))
        )


def test_shards_partition_the_fleet():
    spec = _spec(n_devices=150, devices_per_shard=64)
    shards = spec.shards()
    assert [s.index for s in shards] == [0, 1, 2]
    assert shards[0].start == 0 and shards[-1].stop == 150
    for left, right in zip(shards, shards[1:]):
        assert left.stop == right.start
    assert sum(s.n_devices for s in shards) == 150


def test_device_weights_are_sharding_independent():
    """The load-bearing determinism law: any partition of the device
    range regenerates exactly the same per-device mixes — including
    splits that straddle a GENERATION_BLOCK boundary."""
    spec = _spec(n_devices=GENERATION_BLOCK + 500, devices_per_shard=512)
    full = spec.device_weights(0, spec.n_devices)
    assert full.shape == (spec.n_devices, len(spec.workloads))
    np.testing.assert_allclose(full.sum(axis=1), 1.0, rtol=1e-12)
    cuts = [0, 100, GENERATION_BLOCK - 3, GENERATION_BLOCK + 9, spec.n_devices]
    pieces = [
        spec.device_weights(lo, hi) for lo, hi in zip(cuts, cuts[1:])
    ]
    assert np.array_equal(full, np.concatenate(pieces))


def test_device_weights_rejects_out_of_range():
    spec = _spec()
    with pytest.raises(ConfigurationError):
        spec.device_weights(0, spec.n_devices + 1)
    with pytest.raises(ConfigurationError):
        spec.device_weights(-1, 5)


def test_spec_round_trip_and_fingerprint():
    spec = _spec(ctx_lines=6)
    assert FleetSpec.from_jsonable(spec.to_jsonable()) == spec
    assert FleetSpec.from_jsonable(json.loads(json.dumps(spec.to_jsonable()))) == spec
    assert spec.fingerprint() == _spec(ctx_lines=6).fingerprint()
    assert spec.fingerprint() != _spec(ctx_lines=6, seed=99).fingerprint()
    assert spec.fingerprint() != _spec(ctx_lines=6, scenario="uniform").fingerprint()


# -- lifetime helpers ------------------------------------------------------


def test_device_lifetimes_zero_utilization_is_infinite():
    model = NBTIModel()
    lifetimes = device_lifetimes(model, np.array([0.0, 0.5, 1.0]))
    assert lifetimes.shape == (3,)
    assert np.isinf(lifetimes[0])
    assert lifetimes[2] == pytest.approx(model.reference_years)
    assert lifetimes[1] > lifetimes[2]


def test_survival_counts_sum_across_partitions():
    rng = np.random.default_rng(0)
    lifetimes = rng.uniform(0.5, 20.0, size=200)
    grid = np.asarray(MISSION)
    whole = survival_counts(lifetimes, grid)
    parts = survival_counts(lifetimes[:80], grid) + survival_counts(
        lifetimes[80:], grid
    )
    assert np.array_equal(whole, parts)
    assert np.array_equal(whole, (lifetimes[None, :] > grid[:, None]).sum(axis=1))


# -- store: records and merging --------------------------------------------


def _record(shard, lifetimes, policy="p", fingerprint="f"):
    lifetimes = np.asarray(lifetimes, dtype=float)
    worst = np.clip(1.0 / np.maximum(lifetimes, 1e-9), 0.0, 1.0)
    return ShardRecord.from_lifetimes(
        fingerprint, policy, shard, lifetimes, worst, MISSION
    )


def test_lifetime_histogram_bins_and_tails():
    values = np.array([1e-3, 0.5, 5.0, 2e3, np.inf])
    hist = lifetime_histogram(values)
    assert hist.shape == (HIST_BINS + 2,)
    assert hist[0] == 1  # 1e-3 underflows
    assert hist[-1] == 1  # 2e3 overflows
    assert hist.sum() == 4  # inf carries no magnitude to bin
    assert lifetime_histogram(np.array([])).sum() == 0


def test_shard_record_round_trip():
    record = _record(3, [0.8, 2.5, np.inf, 40.0])
    clone = ShardRecord.from_jsonable(
        json.loads(json.dumps(record.to_jsonable()))
    )
    assert clone.to_jsonable() == record.to_jsonable()
    assert clone.n_infinite == 1


def test_shard_record_version_mismatch_rejected():
    payload = _record(0, [1.0]).to_jsonable()
    payload["version"] = 999
    with pytest.raises(ValueError, match="version"):
        ShardRecord.from_jsonable(payload)


def test_merge_is_order_and_duplicate_insensitive():
    rng = np.random.default_rng(1)
    records = [
        _record(shard, rng.uniform(0.5, 30.0, size=50))
        for shard in range(6)
    ]
    reference = merge_records(records, MISSION)["p"].to_jsonable()
    shuffled = list(reversed(records))
    assert merge_records(shuffled, MISSION)["p"].to_jsonable() == reference
    # A raced double-append of one shard must not double-count.
    assert (
        merge_records(records + [records[2]], MISSION)["p"].to_jsonable()
        == reference
    )


def test_merge_partitions_associatively():
    """One giant shard vs many small ones: integer statistics match
    exactly; float sums to tolerance (addition order differs)."""
    rng = np.random.default_rng(2)
    lifetimes = rng.lognormal(mean=1.5, sigma=0.6, size=1200)
    whole = merge_records([_record(0, lifetimes)], MISSION)["p"]
    parts = merge_records(
        [
            _record(i, chunk)
            for i, chunk in enumerate(np.array_split(lifetimes, 7))
        ],
        MISSION,
    )["p"]
    assert whole.n_devices == parts.n_devices
    assert np.array_equal(whole.hist, parts.hist)
    assert np.array_equal(whole.survival, parts.survival)
    assert whole.lifetime_min == parts.lifetime_min
    assert whole.lifetime_max == parts.lifetime_max
    assert whole.mttf_years() == pytest.approx(parts.mttf_years(), rel=1e-12)


def test_streaming_percentiles_match_dense_within_bin_error():
    """The documented accuracy contract: streaming percentiles from
    the 512-bin log histogram are within the bin ratio
    (~(HIST_HI/HIST_LO)**(1/HIST_BINS) - 1 ≈ 2.3%) of dense
    np.percentile."""
    bound = (HIST_HI / HIST_LO) ** (1.0 / HIST_BINS) - 1.0 + 1e-3
    rng = np.random.default_rng(3)
    lifetimes = rng.lognormal(mean=2.0, sigma=0.8, size=20_000)
    aggregate = merge_records(
        [
            _record(i, chunk)
            for i, chunk in enumerate(np.array_split(lifetimes, 16))
        ],
        MISSION,
    )["p"]
    for q in (1, 10, 50, 90, 99):
        dense = float(np.percentile(lifetimes, q))
        streaming = aggregate.lifetime_percentile(q)
        assert streaming == pytest.approx(dense, rel=bound), f"q={q}"


def test_percentile_with_infinite_tail():
    aggregate = merge_records(
        [_record(0, [2.0, 4.0, np.inf, np.inf])], MISSION
    )["p"]
    assert np.isfinite(aggregate.lifetime_percentile(50))
    assert aggregate.lifetime_percentile(99) == float("inf")
    assert aggregate.mttf_years() == pytest.approx(3.0)


def test_store_skips_torn_corrupt_and_foreign_lines(tmp_path):
    store = ResultStore(tmp_path)
    good = [_record(0, [1.0, 2.0]), _record(1, [3.0, 4.0])]
    for record in good:
        store.append(record)
    store.append(_record(2, [5.0], fingerprint="other"))
    with store.path.open("a") as handle:
        handle.write("not json at all\n")
        handle.write(json.dumps(_record(3, [6.0]).to_jsonable())[:25])
    records, skips = store.load("f")
    assert [r.shard for r in records] == [0, 1]
    assert skips.total == 3
    assert (skips.foreign, skips.torn) == (1, 2)  # garbage + torn parse as torn
    empty_records, empty_skips = ResultStore(tmp_path / "missing").load("f")
    assert empty_records == [] and empty_skips.total == 0


# -- checkpoint ------------------------------------------------------------


def _stressed_tracker(ctx_lines=None):
    tracker = UtilizationTracker(
        FabricGeometry(rows=3, cols=4, ctx_lines=ctx_lines)
    )
    tracker.record(7, ((0, 1), (1, 2)), cycles=3)
    tracker.record(7, ((0, 1), (2, 3)), cycles=2)
    tracker.record(11, ((2, 0),), cycles=5)
    return tracker


def test_checkpoint_round_trip_is_bit_exact(tmp_path):
    for ctx_lines in (None, 9):
        tracker = _stressed_tracker(ctx_lines)
        path = tmp_path / f"t{ctx_lines}.ckpt"
        assert save_tracker(path, tracker) == path
        restored = load_tracker(path)
        assert restored is not None
        assert restored.geometry == tracker.geometry
        assert np.array_equal(
            restored.execution_counts, tracker.execution_counts
        )
        assert np.array_equal(restored.cycle_counts, tracker.cycle_counts)
        assert restored.total_executions == tracker.total_executions
        assert restored.total_cycles == tracker.total_cycles
        assert restored.config_footprints == tracker.config_footprints


def test_checkpoint_restore_then_accrue_matches_uninterrupted(tmp_path):
    """The resume contract: checkpoint, restore, keep recording — the
    final state matches never having checkpointed at all."""
    continuous = _stressed_tracker()
    path = tmp_path / "mid.ckpt"
    save_tracker(path, _stressed_tracker())
    resumed = load_tracker(path)
    for tracker in (continuous, resumed):
        tracker.record(13, ((1, 1), (1, 2)), cycles=4)
    assert np.array_equal(
        resumed.execution_counts, continuous.execution_counts
    )
    assert resumed.config_footprints == continuous.config_footprints


def test_checkpoint_damage_loads_as_none(tmp_path):
    assert load_tracker(tmp_path / "missing.ckpt") is None
    garbage = tmp_path / "garbage.ckpt"
    garbage.write_bytes(b"\x00\x01not a pickle")
    assert load_tracker(garbage) is None
    truncated = tmp_path / "truncated.ckpt"
    save_tracker(truncated, _stressed_tracker())
    truncated.write_bytes(truncated.read_bytes()[:20])
    assert load_tracker(truncated) is None
    stale = tmp_path / "stale.ckpt"
    state = _stressed_tracker().export_state()
    stale.write_bytes(pickle.dumps((CHECKPOINT_VERSION + 1, state)))
    assert load_tracker(stale) is None


def test_tracker_restore_rejects_shape_mismatch():
    state = _stressed_tracker().export_state()
    other = UtilizationTracker(FabricGeometry(rows=2, cols=2))
    with pytest.raises(ConfigurationError, match="shape"):
        other.restore_state(state)


# -- runner ----------------------------------------------------------------


def _policy_payloads(result):
    return json.dumps(
        {n: a.to_jsonable() for n, a in result.aggregates.items()},
        sort_keys=True,
    )


def test_runner_store_resume_is_bit_identical(tmp_path):
    spec = _spec()
    first = FleetRunner(store_dir=tmp_path / "store").run(spec)
    assert first.shards_run == len(spec.shards())
    assert (tmp_path / "store" / "fleet.json").exists()
    assert (tmp_path / "store" / "fleet_summary.json").exists()
    second = FleetRunner(store_dir=tmp_path / "store").run(spec)
    assert second.shards_run == 0
    assert second.shards_resumed == len(spec.shards())
    assert _policy_payloads(first) == _policy_payloads(second)


def test_runner_kill_and_resume_is_bit_identical(tmp_path):
    spec = _spec()
    store_dir = tmp_path / "store"
    reference = FleetRunner(store_dir=store_dir).run(spec)
    store_file = store_dir / ResultStore.FILENAME
    lines = store_file.read_text().splitlines(keepends=True)
    # Kill scenario: drop one complete record, tear the last line.
    store_file.write_text("".join(lines[:-2]) + lines[-1][:30])
    resumed = FleetRunner(store_dir=store_dir).run(spec)
    assert resumed.shards_run >= 1
    assert resumed.store_lines_skipped == 1
    assert _policy_payloads(reference) == _policy_payloads(resumed)


def test_runner_parallel_matches_serial():
    spec = _spec(n_devices=128, devices_per_shard=32)
    serial = FleetRunner().run(spec)
    parallel = FleetRunner(max_workers=2).run(spec)
    assert _policy_payloads(serial) == _policy_payloads(parallel)


def test_runner_checkpoint_reuse_matches_fresh_replay(tmp_path):
    spec = _spec(n_devices=64, devices_per_shard=64)
    ckpt = tmp_path / "ckpt"
    first = FleetRunner(checkpoint_dir=ckpt).run(spec)
    assert list(ckpt.glob("*.ckpt")), "no checkpoints written"
    second = FleetRunner(checkpoint_dir=ckpt).run(spec)
    assert _policy_payloads(first) == _policy_payloads(second)


def test_fleet_result_lookup_errors():
    result = FleetRunner().run(_spec(n_devices=64, devices_per_shard=64))
    with pytest.raises(ConfigurationError, match="no aggregate"):
        result.aggregate("nope")
    assert result.mttf_ratio("baseline") == pytest.approx(1.0)


def test_fleet_experiment_smoke():
    from repro.experiments import fleet as fleet_experiment

    spec = _spec(n_devices=64, devices_per_shard=32, scenario="navigation")
    outcome = fleet_experiment.run(spec=spec)
    text = fleet_experiment.render(outcome)
    assert "Fleet-scale aging campaign" in text
    assert "baseline" in text and "stress_aware" in text
    assert "navigation" in text
