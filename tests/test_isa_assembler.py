"""Tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import _split_hi_lo, assemble
from repro.isa.program import DATA_BASE, TEXT_BASE


def ops(program):
    return [ins.op for ins in program.instructions]


class TestBasicParsing:
    def test_empty_source(self):
        program = assemble("")
        assert len(program) == 0

    def test_comments_are_ignored(self):
        program = assemble(
            """
            # full-line comment
            add a0, a1, a2  # trailing comment
            // C++-style comment
            sub a0, a0, a1  // another
            """
        )
        assert ops(program) == ["add", "sub"]

    def test_r_format(self):
        program = assemble("xor t0, t1, t2")
        ins = program.instructions[0]
        assert (ins.op, ins.rd, ins.rs1, ins.rs2) == ("xor", 5, 6, 7)

    def test_i_format(self):
        ins = assemble("addi sp, sp, -16").instructions[0]
        assert (ins.op, ins.rd, ins.rs1, ins.imm) == ("addi", 2, 2, -16)

    def test_load_store_operands(self):
        program = assemble(
            """
            lw a0, 8(sp)
            sw a1, -4(s0)
            lb t0, (a2)
            """
        )
        lw, sw, lb = program.instructions
        assert (lw.rd, lw.rs1, lw.imm) == (10, 2, 8)
        assert (sw.rs2, sw.rs1, sw.imm) == (11, 8, -4)
        assert (lb.rs1, lb.imm) == (12, 0)

    def test_hex_and_char_immediates(self):
        program = assemble(
            """
            addi a0, zero, 0x7f
            addi a1, zero, 'A'
            """
        )
        assert program.instructions[0].imm == 127
        assert program.instructions[1].imm == 65

    def test_unknown_mnemonic_raises_with_line(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble("nop\nfrobnicate a0, a1\n")

    def test_wrong_operand_count_raises(self):
        with pytest.raises(AssemblyError):
            assemble("add a0, a1")

    def test_instruction_in_data_section_raises(self):
        with pytest.raises(AssemblyError):
            assemble(".data\nadd a0, a1, a2")


class TestLabelsAndBranches:
    def test_branch_offset_backward(self):
        program = assemble(
            """
            loop:
              addi a0, a0, -1
              bnez a0, loop
            """
        )
        branch = program.instructions[1]
        assert branch.op == "bne"
        assert branch.imm == -4

    def test_branch_offset_forward(self):
        program = assemble(
            """
              beq a0, a1, done
              nop
              nop
            done:
              nop
            """
        )
        assert program.instructions[0].imm == 12

    def test_jal_and_call(self):
        program = assemble(
            """
            main:
              call helper
              ret
            helper:
              ret
            """
        )
        call = program.instructions[0]
        assert call.op == "jal"
        assert call.rd == 1
        assert call.imm == 8

    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("a:\nnop\na:\nnop")

    def test_undefined_symbol_raises(self):
        with pytest.raises(AssemblyError, match="undefined"):
            assemble("j nowhere")

    def test_label_on_same_line_as_instruction(self):
        program = assemble("start: addi a0, zero, 1")
        assert program.symbols["start"] == TEXT_BASE
        assert len(program) == 1

    def test_entry_prefers_main(self):
        program = assemble(
            """
            helper:
              ret
            main:
              nop
            """
        )
        assert program.entry == program.symbols["main"]


class TestPseudoInstructions:
    def test_li_small(self):
        program = assemble("li a0, 42")
        assert ops(program) == ["addi"]
        assert program.instructions[0].imm == 42

    def test_li_large_positive(self):
        program = assemble("li a0, 0x12345678")
        assert ops(program) == ["lui", "addi"]

    def test_li_large_negative(self):
        program = assemble("li a0, -100000")
        assert ops(program) == ["lui", "addi"]

    def test_li_multiple_of_4096(self):
        program = assemble("li a0, 0x10000")
        assert ops(program) == ["lui"]

    def test_mv_not_neg(self):
        program = assemble("mv a0, a1\nnot a2, a3\nneg a4, a5")
        assert ops(program) == ["addi", "xori", "sub"]
        assert program.instructions[1].imm == -1

    def test_branch_zero_family(self):
        program = assemble(
            """
            t:
              beqz a0, t
              bnez a0, t
              bltz a0, t
              bgez a0, t
              blez a0, t
              bgtz a0, t
            """
        )
        assert ops(program) == ["beq", "bne", "blt", "bge", "bge", "blt"]
        blez = program.instructions[4]
        assert (blez.rs1, blez.rs2) == (0, 10)

    def test_swapped_compare_branches(self):
        program = assemble("x:\nbgt a0, a1, x\nble a2, a3, x")
        bgt, ble = program.instructions
        assert (bgt.op, bgt.rs1, bgt.rs2) == ("blt", 11, 10)
        assert (ble.op, ble.rs1, ble.rs2) == ("bge", 13, 12)

    def test_ret_and_jr(self):
        program = assemble("jr t0\nret")
        jr, ret = program.instructions
        assert (jr.op, jr.rd, jr.rs1) == ("jalr", 0, 5)
        assert (ret.op, ret.rd, ret.rs1) == ("jalr", 0, 1)

    def test_seqz_snez(self):
        program = assemble("seqz a0, a1\nsnez a2, a3")
        assert ops(program) == ["sltiu", "sltu"]


class TestDataSection:
    def test_word_data(self):
        program = assemble(
            """
            .data
            values: .word 1, 2, 0xdeadbeef
            """
        )
        base, data = program.data_segments[0]
        assert base == DATA_BASE
        assert data[0:4] == (1).to_bytes(4, "little")
        assert data[8:12] == (0xDEADBEEF).to_bytes(4, "little")
        assert program.symbols["values"] == DATA_BASE

    def test_byte_half_and_space(self):
        program = assemble(
            """
            .data
            b: .byte 1, 2, 255
            .align 2
            h: .half 0x1234
            gap: .space 3
            """
        )
        _, data = program.data_segments[0]
        assert data[0:3] == bytes([1, 2, 255])
        assert program.symbols["h"] == DATA_BASE + 4
        assert data[4:6] == (0x1234).to_bytes(2, "little")

    def test_asciiz(self):
        program = assemble('.data\nmsg: .asciiz "hi\\n"')
        _, data = program.data_segments[0]
        assert data == b"hi\n\x00"

    def test_word_with_symbol_reference(self):
        program = assemble(
            """
            .data
            target: .word 7
            ptr: .word target, target+4
            """
        )
        _, data = program.data_segments[0]
        assert int.from_bytes(data[4:8], "little") == DATA_BASE
        assert int.from_bytes(data[8:12], "little") == DATA_BASE + 4

    def test_la_resolves_hi_lo(self):
        program = assemble(
            """
            la a0, buf
            .data
            buf: .word 0
            """
        )
        lui, addi = program.instructions
        assert (lui.imm << 12) + addi.imm == DATA_BASE

    def test_data_directive_in_text_raises(self):
        with pytest.raises(AssemblyError):
            assemble('.word 4')


class TestHiLoSplit:
    @pytest.mark.parametrize(
        "value",
        [0, 1, -1, 0x800, 0x7FF, 0xFFF, 0x1000, 0x12345678, -100000,
         0x7FFFFFFF, -0x80000000, 0xFFFFFFFF],
    )
    def test_recombination(self, value):
        hi, lo = _split_hi_lo(value)
        assert 0 <= hi < (1 << 20)
        assert -2048 <= lo <= 2047
        assert ((hi << 12) + lo) & 0xFFFFFFFF == value & 0xFFFFFFFF
