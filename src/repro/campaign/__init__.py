"""Campaign subsystem: declarative experiment campaigns over the system.

A *campaign* is the cross product of fabric geometries, mappers,
allocation policies, workloads and RNG seeds. :class:`CampaignSpec` declares it,
:class:`CampaignRunner` evaluates every resulting design point (serially
or on a process pool) against memoised workload traces — grouping
points that differ only in allocation policy onto shared launch
schedules (one trace walk per pipeline, vectorized replay per policy;
see :mod:`repro.system.schedule`) — and per-point JSON artifacts make
the results durable. The experiment drivers (``repro.experiments``)
and the DSE sweep (``repro.dse.sweep``) are thin consumers of this
package.
"""

from repro.campaign.artifacts import to_jsonable, write_json
from repro.campaign.results import SuiteRun, suite_run_summary
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    evaluate_design_point,
)
from repro.campaign.spec import (
    CampaignSpec,
    DesignPoint,
    MapperSpec,
    PolicySpec,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "DesignPoint",
    "MapperSpec",
    "PolicySpec",
    "SuiteRun",
    "evaluate_design_point",
    "suite_run_summary",
    "to_jsonable",
    "write_json",
]
