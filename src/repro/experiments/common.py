"""Shared experiment plumbing — a thin consumer of the campaign layer.

``run_suite`` evaluates one (geometry, policy) design point over the
full verified workload suite through the campaign runner and memoises
the result, so every figure/table that touches the same design point
shares one simulation. Design points that differ only in allocation
policy additionally share one launch schedule per workload through the
in-process memo (:mod:`repro.system.schedule`): the first policy walks
each trace, every further policy is a vectorized replay — which is how
the multi-policy figures (Fig. 7/8, Tables I–II) avoid re-walking the
suite per policy. :class:`SuiteRun` itself lives in
:mod:`repro.campaign.results`; it is re-exported here for the
experiment drivers.
"""

from __future__ import annotations

from functools import lru_cache

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    MapperSpec,
    PolicySpec,
    SuiteRun,
)
from repro.workloads.suite import workload_names

__all__ = ["SuiteRun", "run_suite", "suite_size"]


def run_suite(
    rows: int,
    cols: int,
    policy: str = "baseline",
    mapper: str = "greedy",
    mapper_kwargs: dict | None = None,
    **policy_kwargs,
) -> SuiteRun:
    """Run the full verified suite on one design point (memoised)."""
    key = (
        rows,
        cols,
        policy,
        tuple(sorted(policy_kwargs.items())),
        mapper,
        tuple(sorted((mapper_kwargs or {}).items())),
    )
    return _run_suite_cached(key)


@lru_cache(maxsize=64)
def _run_suite_cached(key) -> SuiteRun:
    rows, cols, policy, policy_kwargs, mapper, mapper_kwargs = key
    spec = CampaignSpec(
        geometries=((rows, cols),),
        policies=(PolicySpec(name=policy, kwargs=policy_kwargs),),
        mappers=(MapperSpec(name=mapper, kwargs=mapper_kwargs),),
        name=f"suite_L{cols}xW{rows}_{policy}",
    )
    return CampaignRunner().run(spec).only_run()


def suite_size() -> int:
    """Number of workloads in the suite."""
    return len(workload_names())
