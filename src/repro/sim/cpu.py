"""Functional RV32IM interpreter with committed-trace capture.

The CPU executes an assembled :class:`~repro.isa.program.Program` to
architectural completion and records every committed instruction as a
:class:`~repro.sim.trace.TraceRecord`. The trace — not the CPU — is what
the timing models consume, so this interpreter aims for correctness and
clarity rather than cycle accuracy.

Halting conventions (both supported):

* ``ecall`` with ``a7 == 93`` (Linux exit) or ``a7 == 10`` (spike-style),
  exit code taken from ``a0``;
* returning from the entry function: ``ra`` starts at 0 and a jump to
  address 0 halts, with the exit code in ``a0``.

A small console is provided through ``ecall``: ``a7 == 1`` prints ``a0``
as a signed integer, ``a7 == 11`` prints ``a0`` as one character.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.isa.instructions import Instruction, InstrClass
from repro.isa.program import STACK_TOP, Program
from repro.sim.memory import Memory
from repro.sim.trace import Trace, TraceRecord

_MASK32 = 0xFFFFFFFF
_SIGN_BIT = 0x80000000
_INT32_MIN = -(1 << 31)

#: Default upper bound on committed instructions, to catch runaway loops.
DEFAULT_MAX_STEPS = 4_000_000

_SYSCALL_EXIT = (93, 10)
_SYSCALL_PRINT_INT = 1
_SYSCALL_PRINT_CHAR = 11


def to_signed(value: int) -> int:
    """Interpret a 32-bit unsigned value as two's-complement signed."""
    return value - 0x100000000 if value & _SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Truncate a Python int to its 32-bit unsigned representation."""
    return value & _MASK32


@dataclass
class ExecutionResult:
    """Outcome of a completed functional run."""

    trace: Trace
    exit_code: int
    registers: list[int]
    console: str
    steps: int
    memory: Memory = field(repr=False, default_factory=Memory)


class CPU:
    """Single-hart functional RV32IM interpreter."""

    def __init__(
        self,
        program: Program,
        memory: Memory | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        collect_trace: bool = True,
    ) -> None:
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.max_steps = max_steps
        self.collect_trace = collect_trace
        self.registers = [0] * 32
        self.registers[2] = STACK_TOP  # sp
        self.registers[1] = 0          # ra -> return-to-zero halts
        self.pc = program.entry
        self.console_chunks: list[str] = []
        self._halted = False
        self._exit_code = 0
        for address, data in program.data_segments:
            self.memory.load_bytes(address, data)

    # ------------------------------------------------------------------

    def run(self) -> ExecutionResult:
        """Execute until halt; return the trace and final state.

        Raises:
            SimulationError: on illegal instructions, runaway execution
                or control transfer outside the text segment.
        """
        records: list[TraceRecord] = []
        program = self.program
        steps = 0
        while not self._halted:
            if steps >= self.max_steps:
                raise SimulationError(
                    f"exceeded max_steps={self.max_steps} "
                    f"(program {program.name!r}, pc={self.pc:#x})"
                )
            ins = program.instruction_at(self.pc)
            record = self._execute(ins)
            if self.collect_trace:
                records.append(record)
            steps += 1
            self.pc = record.next_pc
            if self.pc == 0:
                self._halted = True
                self._exit_code = to_signed(self.registers[10])
            elif not self._halted and not program.contains_pc(self.pc):
                raise SimulationError(
                    f"control transfer to {self.pc:#x}, outside text segment"
                )
        return ExecutionResult(
            trace=Trace(records, name=program.name),
            exit_code=self._exit_code,
            registers=list(self.registers),
            console="".join(self.console_chunks),
            steps=steps,
            memory=self.memory,
        )

    # ------------------------------------------------------------------

    def _execute(self, ins: Instruction) -> TraceRecord:
        """Execute one instruction, returning its committed record."""
        op = ins.op
        regs = self.registers
        pc = self.pc
        next_pc = pc + 4
        rd_value: int | None = None
        mem_addr: int | None = None
        mem_bytes = 0
        taken: bool | None = None

        rs1_val = regs[ins.rs1] if ins.rs1 is not None else 0
        rs2_val = regs[ins.rs2] if ins.rs2 is not None else 0
        imm = ins.imm if ins.imm is not None else 0
        cls = ins.cls

        if cls is InstrClass.ALU:
            rd_value = _ALU_OPS[op](rs1_val, rs2_val, imm, pc)
        elif cls is InstrClass.MUL:
            rd_value = _mul(op, rs1_val, rs2_val)
        elif cls is InstrClass.DIV:
            rd_value = _div(op, rs1_val, rs2_val)
        elif cls is InstrClass.LOAD:
            mem_addr = to_unsigned(rs1_val + imm)
            mem_bytes = ins.spec.mem_bytes
            rd_value = self._load(op, mem_addr)
        elif cls is InstrClass.STORE:
            mem_addr = to_unsigned(rs1_val + imm)
            mem_bytes = ins.spec.mem_bytes
            self._store(op, mem_addr, rs2_val)
        elif cls is InstrClass.BRANCH:
            taken = _branch_taken(op, rs1_val, rs2_val)
            if taken:
                next_pc = to_unsigned(pc + imm)
        elif cls is InstrClass.JUMP:
            rd_value = to_unsigned(pc + 4)
            taken = True
            if op == "jal":
                next_pc = to_unsigned(pc + imm)
            else:  # jalr
                next_pc = to_unsigned(rs1_val + imm) & ~1
        elif cls is InstrClass.SYSTEM:
            self._system(op)
        else:  # pragma: no cover - OPCODES covers all classes
            raise SimulationError(f"unhandled instruction class {cls}")

        if rd_value is not None and ins.rd:
            regs[ins.rd] = to_unsigned(rd_value)

        rd = ins.rd if (rd_value is not None and ins.rd) else None
        return TraceRecord(
            pc=pc, op=op, cls=cls, rd=rd, rs1=ins.rs1, rs2=ins.rs2,
            imm=ins.imm, rd_value=regs[rd] if rd else None,
            mem_addr=mem_addr, mem_bytes=mem_bytes, taken=taken,
            next_pc=next_pc,
        )

    def _load(self, op: str, address: int) -> int:
        memory = self.memory
        if op == "lw":
            return memory.read_u32(address)
        if op == "lh":
            value = memory.read_u16(address)
            return value - 0x10000 if value & 0x8000 else value
        if op == "lhu":
            return memory.read_u16(address)
        if op == "lb":
            value = memory.read_u8(address)
            return value - 0x100 if value & 0x80 else value
        return memory.read_u8(address)  # lbu

    def _store(self, op: str, address: int, value: int) -> None:
        if op == "sw":
            self.memory.write_u32(address, value)
        elif op == "sh":
            self.memory.write_u16(address, value)
        else:  # sb
            self.memory.write_u8(address, value)

    def _system(self, op: str) -> None:
        if op == "ebreak":
            raise SimulationError(f"ebreak at pc={self.pc:#x}")
        service = self.registers[17]  # a7
        arg = self.registers[10]      # a0
        if service in _SYSCALL_EXIT:
            self._halted = True
            self._exit_code = to_signed(arg)
        elif service == _SYSCALL_PRINT_INT:
            self.console_chunks.append(str(to_signed(arg)))
        elif service == _SYSCALL_PRINT_CHAR:
            self.console_chunks.append(chr(arg & 0xFF))
        else:
            raise SimulationError(
                f"unsupported ecall service {service} at pc={self.pc:#x}"
            )


# ----------------------------------------------------------------------
# Pure operator implementations.
# ----------------------------------------------------------------------


def _mul(op: str, a: int, b: int) -> int:
    if op == "mul":
        return (a * b) & _MASK32
    if op == "mulh":
        return (to_signed(a) * to_signed(b)) >> 32
    if op == "mulhsu":
        return (to_signed(a) * b) >> 32
    return (a * b) >> 32  # mulhu


def _div(op: str, a: int, b: int) -> int:
    """RV32M division semantics, including the divide-by-zero cases."""
    if op == "div":
        if b == 0:
            return _MASK32
        sa, sb = to_signed(a), to_signed(b)
        if sa == _INT32_MIN and sb == -1:
            return _SIGN_BIT  # overflow: result is INT32_MIN
        return int(sa / sb) & _MASK32  # truncate toward zero
    if op == "divu":
        return _MASK32 if b == 0 else (a // b)
    if op == "rem":
        if b == 0:
            return a
        sa, sb = to_signed(a), to_signed(b)
        if sa == _INT32_MIN and sb == -1:
            return 0
        return (sa - int(sa / sb) * sb) & _MASK32
    return a if b == 0 else (a % b)  # remu


def _branch_taken(op: str, a: int, b: int) -> bool:
    if op == "beq":
        return a == b
    if op == "bne":
        return a != b
    if op == "blt":
        return to_signed(a) < to_signed(b)
    if op == "bge":
        return to_signed(a) >= to_signed(b)
    if op == "bltu":
        return a < b
    return a >= b  # bgeu


_ALU_OPS = {
    "add": lambda a, b, imm, pc: a + b,
    "sub": lambda a, b, imm, pc: a - b,
    "sll": lambda a, b, imm, pc: a << (b & 31),
    "slt": lambda a, b, imm, pc: int(to_signed(a) < to_signed(b)),
    "sltu": lambda a, b, imm, pc: int(a < b),
    "xor": lambda a, b, imm, pc: a ^ b,
    "srl": lambda a, b, imm, pc: a >> (b & 31),
    "sra": lambda a, b, imm, pc: to_signed(a) >> (b & 31),
    "or": lambda a, b, imm, pc: a | b,
    "and": lambda a, b, imm, pc: a & b,
    "addi": lambda a, b, imm, pc: a + imm,
    "slti": lambda a, b, imm, pc: int(to_signed(a) < imm),
    "sltiu": lambda a, b, imm, pc: int(a < to_unsigned(imm)),
    "xori": lambda a, b, imm, pc: a ^ to_unsigned(imm),
    "ori": lambda a, b, imm, pc: a | to_unsigned(imm),
    "andi": lambda a, b, imm, pc: a & to_unsigned(imm),
    "slli": lambda a, b, imm, pc: a << (imm & 31),
    "srli": lambda a, b, imm, pc: a >> (imm & 31),
    "srai": lambda a, b, imm, pc: to_signed(a) >> (imm & 31),
    "lui": lambda a, b, imm, pc: imm << 12,
    "auipc": lambda a, b, imm, pc: pc + (imm << 12),
}
