"""Artifact durability regressions: atomic writes, total set ordering,
and the zero-energy guard.

Each test pins one failure mode this PR fixed:

* ``write_json`` used to stream straight into the destination — a
  crash mid-``json.dump`` left a truncated artifact that poisoned
  later reads. It now writes a temp file in the same directory and
  ``os.replace``\\ s it into place.
* ``to_jsonable`` sorted set members with bare ``sorted()``, which
  raises ``TypeError`` on mixed-type sets — violating the function's
  own never-fails contract.
* ``SuiteRun.energy_ratio`` silently returned 1.0 ("parity") when the
  suite's total GPP energy was zero, masking degenerate runs.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.campaign.artifacts import to_jsonable, write_json
from repro.campaign.results import SuiteRun
from repro.cgra.fabric import FabricGeometry
from repro.errors import ConfigurationError


def test_write_json_is_atomic_on_mid_dump_crash(tmp_path, monkeypatch):
    """A crash during serialization must leave the previous complete
    artifact untouched and no temp litter behind."""
    target = tmp_path / "artifact.json"
    write_json(target, {"generation": 1})
    before = target.read_bytes()

    calls = {"n": 0}
    real_dump = json.dump

    def exploding_dump(obj, handle, **kwargs):
        handle.write('{"generation": 2, "partial": ')  # torn output
        calls["n"] += 1
        raise OSError("disk full mid-dump")

    monkeypatch.setattr(json, "dump", exploding_dump)
    with pytest.raises(OSError, match="disk full"):
        write_json(target, {"generation": 2})
    monkeypatch.setattr(json, "dump", real_dump)

    assert calls["n"] == 1
    assert target.read_bytes() == before, "crash corrupted the artifact"
    litter = [p for p in tmp_path.iterdir() if p != target]
    assert litter == [], f"temp files left behind: {litter}"


def test_write_json_creates_parents_and_round_trips(tmp_path):
    target = tmp_path / "deep" / "nested" / "artifact.json"
    write_json(target, {"values": [1, 2, 3]})
    assert json.loads(target.read_text()) == {"values": [1, 2, 3]}


def test_to_jsonable_mixed_type_set_is_total_and_deterministic():
    """Mixed-type sets must serialize (never TypeError) and always in
    the same order regardless of set iteration order."""
    mixed = {1, "a", 2.5, "b", None}
    out = to_jsonable(mixed)
    assert sorted(map(repr, out)) == sorted(
        map(repr, [1, "a", 2.5, "b", None])
    )
    # Deterministic across equivalent sets built in different orders.
    assert out == to_jsonable({None, "b", 2.5, "a", 1})
    json.dumps(out)  # and actually JSON-serializable


def test_to_jsonable_homogeneous_set_keeps_natural_order():
    """Homogeneous sets keep natural sort order (pinned: repr-sorting
    would misplace {2, 10} as [10, 2] and break golden artifacts)."""
    assert to_jsonable({10, 2, 33}) == [2, 10, 33]
    assert to_jsonable(frozenset({"b", "a"})) == ["a", "b"]


def _fake_run(pairs):
    """SuiteRun over stub results carrying only the energy fields."""
    results = {
        f"w{i}": SimpleNamespace(
            transrec_energy=SimpleNamespace(total_pj=transrec),
            gpp_energy=SimpleNamespace(total_pj=gpp),
        )
        for i, (transrec, gpp) in enumerate(pairs)
    }
    return SuiteRun(
        geometry=FabricGeometry(rows=2, cols=2),
        policy="baseline",
        results=results,
    )


def test_energy_ratio_zero_gpp_energy_raises():
    run = _fake_run([(5.0, 0.0), (3.0, 0.0)])
    with pytest.raises(ConfigurationError, match="GPP energy is zero"):
        run.energy_ratio()


def test_energy_ratio_normal_case_unchanged():
    run = _fake_run([(5.0, 10.0), (3.0, 6.0)])
    assert run.energy_ratio() == pytest.approx(0.5)
