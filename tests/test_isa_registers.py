"""Tests for register naming and parsing."""

import pytest

from repro.errors import AssemblyError
from repro.isa.registers import (
    ABI_NAMES,
    NUM_REGISTERS,
    is_register,
    parse_register,
    register_name,
)


def test_abi_names_count():
    assert len(ABI_NAMES) == NUM_REGISTERS == 32


def test_parse_machine_names():
    for i in range(32):
        assert parse_register(f"x{i}") == i


def test_parse_abi_names():
    assert parse_register("zero") == 0
    assert parse_register("ra") == 1
    assert parse_register("sp") == 2
    assert parse_register("a0") == 10
    assert parse_register("a7") == 17
    assert parse_register("t6") == 31
    assert parse_register("s11") == 27


def test_parse_fp_alias():
    assert parse_register("fp") == parse_register("s0") == 8


def test_parse_is_case_insensitive_and_strips():
    assert parse_register(" A0 ") == 10
    assert parse_register("X5") == 5


def test_parse_unknown_register_raises():
    with pytest.raises(AssemblyError):
        parse_register("q7")
    with pytest.raises(AssemblyError):
        parse_register("x32")


def test_register_name_round_trip():
    for i in range(32):
        assert parse_register(register_name(i)) == i


def test_register_name_out_of_range():
    with pytest.raises(ValueError):
        register_name(32)
    with pytest.raises(ValueError):
        register_name(-1)


def test_is_register():
    assert is_register("t0")
    assert is_register("x31")
    assert not is_register("foo")
