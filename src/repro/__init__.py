"""repro — reproduction of "Proactive Aging Mitigation in CGRAs through
Utilization-Aware Allocation" (Brandalero et al., DAC 2020).

Quick start::

    from repro import make_system, run_workload

    trace = run_workload("bitcount")
    baseline = make_system("BE", policy="baseline").run_trace(trace)
    proposed = make_system("BE", policy="rotation").run_trace(trace)
    print(baseline.tracker.max_utilization(),
          proposed.tracker.max_utilization())

Packages:

* :mod:`repro.core` — the paper's contribution (allocation policies).
* :mod:`repro.aging` — NBTI model (Eq. 1) and lifetime analysis.
* :mod:`repro.cgra` / :mod:`repro.dbt` / :mod:`repro.gpp` /
  :mod:`repro.isa` / :mod:`repro.sim` — the TransRec substrate.
* :mod:`repro.hw` — area/timing/energy models (Table II, Sec. V-B).
* :mod:`repro.system` / :mod:`repro.dse` — full-system simulation and
  design-space exploration.
* :mod:`repro.workloads` — the 10 MiBench-like kernels.
* :mod:`repro.experiments` — per-figure/table reproduction drivers.
"""

from repro.aging import NBTIModel, lifetime_improvement, lifetime_years
from repro.cgra import FabricGeometry, VirtualConfiguration
from repro.core import (
    AllocationPolicy,
    BaselinePolicy,
    ConfigurationAllocator,
    RandomPolicy,
    RotationPolicy,
    StressAwarePolicy,
    UtilizationTracker,
    Weighting,
    available_policies,
    make_policy,
)
from repro.errors import ReproError
from repro.isa import Program, assemble
from repro.sim import CPU, Trace
from repro.system import (
    SCENARIOS,
    SystemParams,
    SystemResult,
    TransRecSystem,
    make_system,
)
from repro.workloads import run_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "AllocationPolicy",
    "BaselinePolicy",
    "CPU",
    "ConfigurationAllocator",
    "FabricGeometry",
    "NBTIModel",
    "Program",
    "RandomPolicy",
    "ReproError",
    "RotationPolicy",
    "SCENARIOS",
    "StressAwarePolicy",
    "SystemParams",
    "SystemResult",
    "Trace",
    "TransRecSystem",
    "UtilizationTracker",
    "VirtualConfiguration",
    "Weighting",
    "__version__",
    "assemble",
    "available_policies",
    "lifetime_improvement",
    "lifetime_years",
    "make_policy",
    "make_system",
    "run_workload",
    "workload_names",
]
