"""Adaptive stress-aware allocation (the paper's future-work variant).

Section VI: "As a future work, we will implement the improved rotation
techniques and use run-time aging information to adapt the allocation
strategy dynamically." This policy does exactly that: it reads the
accumulated per-FU stress from the :class:`UtilizationTracker` (the
run-time aging information an aging sensor would provide) and chooses
the pivot that minimises the resulting worst-case stress.

A full ``W x L`` pivot search per launch is expensive, so the policy
re-optimises every ``interval`` launches and follows the fabric-covering
snake in between — a realistic duty cycle for a hardware controller.
"""

from __future__ import annotations

import numpy as np

from repro.cgra.configuration import VirtualConfiguration
from repro.cgra.fabric import FabricGeometry
from repro.core.patterns import movement_pattern
from repro.core.policy import AllocationPolicy, register_policy


@register_policy
class StressAwarePolicy(AllocationPolicy):
    """Minimise worst-case accumulated stress with periodic re-search.

    Args:
        interval: launches between full pivot searches (1 = search on
            every launch).
        pattern: fallback movement pattern between searches.
        sensor: optional :class:`repro.aging.sensor.SensorArray`; when
            given, the pivot search sees quantized/sampled readings
            instead of oracle stress counters.
    """

    name = "stress_aware"

    def __init__(
        self,
        interval: int = 16,
        pattern: str = "snake",
        sensor=None,
    ) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self.pattern_name = pattern
        self.sensor = sensor
        self._pattern: list[tuple[int, int]] = []
        self._position = 0
        self._launches = 0

    def bind(self, geometry: FabricGeometry) -> None:
        super().bind(geometry)
        self._pattern = movement_pattern(
            self.pattern_name, geometry.rows, geometry.cols
        )
        self._position = 0
        self._launches = 0
        if self.sensor is not None:
            self.sensor.reset()

    def next_pivot(self, config: VirtualConfiguration, tracker) -> tuple[int, int]:
        self._launches += 1
        if self._launches % self.interval == 1 or self.interval == 1:
            pivot = self._best_pivot(config, tracker)
            self._position = self._pattern.index(pivot)
            return pivot
        self._position = (self._position + 1) % len(self._pattern)
        return self._pattern[self._position]

    def _best_pivot(
        self, config: VirtualConfiguration, tracker
    ) -> tuple[int, int]:
        """Pivot minimising the max stress over the cells it would touch.

        Ties break towards lower current totals, then pattern order, so
        behaviour is deterministic.
        """
        if self.sensor is not None:
            counts = self.sensor.read(tracker.execution_counts)
        else:
            counts = tracker.execution_counts  # oracle stress counters
        rows, cols = self.geometry.rows, self.geometry.cols
        cell_rows = np.array([c[0] for c in config.cells])
        cell_cols = np.array([c[1] for c in config.cells])
        best_pivot = (0, 0)
        best_key: tuple[int, int] | None = None
        for pivot_row, pivot_col in self._pattern:
            target = counts[
                (cell_rows + pivot_row) % rows, (cell_cols + pivot_col) % cols
            ]
            key = (int(target.max()), int(target.sum()))
            if best_key is None or key < best_key:
                best_key = key
                best_pivot = (pivot_row, pivot_col)
        return best_pivot

    def describe(self) -> str:
        return f"stress_aware(interval={self.interval})"
