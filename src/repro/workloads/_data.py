"""Deterministic input generation and assembly-data helpers."""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF


def lcg_stream(seed: int, count: int) -> list[int]:
    """Deterministic 32-bit LCG (Numerical Recipes constants)."""
    values = []
    state = seed & _MASK32
    for _ in range(count):
        state = (state * 1664525 + 1013904223) & _MASK32
        values.append(state)
    return values


def words_directive(label: str, values: list[int], per_line: int = 8) -> str:
    """Emit a labelled ``.word`` block for the data section."""
    lines = [f"{label}:"]
    for start in range(0, len(values), per_line):
        chunk = values[start:start + per_line]
        rendered = ", ".join(f"{v & _MASK32:#x}" for v in chunk)
        lines.append(f"  .word {rendered}")
    return "\n".join(lines)


def bytes_directive(label: str, values: bytes, per_line: int = 16) -> str:
    """Emit a labelled ``.byte`` block for the data section."""
    lines = [f"{label}:"]
    for start in range(0, len(values), per_line):
        chunk = values[start:start + per_line]
        rendered = ", ".join(str(b) for b in chunk)
        lines.append(f"  .byte {rendered}")
    return "\n".join(lines)


def to_u32(value: int) -> int:
    """Truncate to unsigned 32 bits (keeps Python references honest)."""
    return value & _MASK32
