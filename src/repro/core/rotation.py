"""The proposed utilization-aware allocation: pattern-driven rotation.

One hardware counter steps through a fabric-covering movement pattern;
each configuration launch reads the counter as its pivot and advances
it (Section III: "we move the position of the configuration pivot for
each new execution following the pattern ... which covers all of the
reconfigurable fabric"). Because the pivot cycles over every cell, each
virtual cell's stress is spread across all ``W x L`` physical cells and
per-FU utilization converges to the fabric-average occupancy.
"""

from __future__ import annotations

import numpy as np

from repro.cgra.configuration import VirtualConfiguration
from repro.cgra.fabric import FabricGeometry
from repro.core.patterns import movement_pattern
from repro.core.policy import AllocationPolicy, SegmentPlan, register_policy


@register_policy
class RotationPolicy(AllocationPolicy):
    """Move the pivot one pattern step per configuration launch.

    Args:
        pattern: movement pattern name (see
            :data:`repro.core.patterns.MOVEMENT_PATTERNS`).
        stride: pattern steps advanced per launch. The paper's hardware
            uses 1; other strides co-prime with the pattern length give
            the same coverage with different short-term interleaving.
    """

    name = "rotation"
    plan_granularity = "schedule"

    def __init__(self, pattern: str = "snake", stride: int = 1) -> None:
        self.pattern_name = pattern
        self.stride = stride
        self._pattern: list[tuple[int, int]] = []
        self._pattern_array = np.empty((0, 2), dtype=np.int64)
        self._position = 0

    def bind(self, geometry: FabricGeometry) -> None:
        super().bind(geometry)
        self._pattern = movement_pattern(
            self.pattern_name, geometry.rows, geometry.cols
        )
        self._pattern_array = np.asarray(self._pattern, dtype=np.int64)
        self._position = 0

    def next_pivot(self, config: VirtualConfiguration, tracker) -> tuple[int, int]:
        pivot = self._pattern[self._position]
        self._position = (self._position + self.stride) % len(self._pattern)
        return pivot

    def next_pivots(
        self, config: VirtualConfiguration, tracker, count: int
    ) -> np.ndarray:
        # The pivot sequence is a pure function of the hardware
        # counter, so a batch is one strided gather from the pattern.
        length = len(self._pattern)
        positions = (
            self._position + self.stride * np.arange(count, dtype=np.int64)
        ) % length
        self._position = int(
            (self._position + self.stride * count) % length
        )
        return self._pattern_array[positions]

    def plan_segments(self, schedule, tracker):
        """The hardware counter never reads stress: one strided gather
        from the pattern covers the whole schedule."""
        count = schedule.n_launches
        yield SegmentPlan(
            start=0, stop=count, pivots=self.next_pivots(None, tracker, count)
        )

    def describe(self) -> str:
        return f"rotation({self.pattern_name}, stride={self.stride})"
