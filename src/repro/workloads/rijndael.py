"""rijndael (MiBench security): AES-style block rounds in CBC chaining.

Uses the real AES S-box (generated from the GF(2^8) inverse + affine
transform) and ShiftRows permutation over a 16-byte state. Two paper
-vs-build substitutions, documented in DESIGN.md: MixColumns is
omitted and the key schedule is a simple S-box-of-(key+round) form —
neither changes the kernel's *computational shape* (byte gathers,
table lookups, xors in tight loops), which is what the mapping study
exercises. Four blocks are encrypted CBC-style.
"""

from __future__ import annotations

from repro.workloads._data import bytes_directive, lcg_stream, to_u32
from repro.workloads.suite import Workload

N_BLOCKS = 4
N_ROUNDS = 10
SEED = 0xAE5_CAFE


def _aes_sbox() -> list[int]:
    """The genuine AES substitution box."""

    def rotl8(x: int, n: int) -> int:
        return ((x << n) | (x >> (8 - n))) & 0xFF

    sbox = [0] * 256
    p = q = 1
    sbox[0] = 0x63
    while True:
        # p advances by multiplication with 3 in GF(2^8).
        p = p ^ ((p << 1) & 0xFF) ^ (0x1B if p & 0x80 else 0)
        # q advances by division by 3.
        q ^= (q << 1) & 0xFF
        q ^= (q << 2) & 0xFF
        q ^= (q << 4) & 0xFF
        if q & 0x80:
            q ^= 0x09
        value = q ^ rotl8(q, 1) ^ rotl8(q, 2) ^ rotl8(q, 3) ^ rotl8(q, 4)
        sbox[p] = value ^ 0x63
        if p == 1:
            return sbox


def _shift_rows_permutation() -> list[int]:
    """perm[i] = source index feeding state[i] (column-major state)."""
    perm = []
    for i in range(16):
        row, col = i % 4, i // 4
        perm.append(4 * ((col + row) % 4) + row)
    return perm


def _inputs() -> tuple[bytes, bytes]:
    stream = lcg_stream(SEED, N_BLOCKS * 16 + 16)
    message = bytes(v & 0xFF for v in stream[: N_BLOCKS * 16])
    key = bytes(v & 0xFF for v in stream[N_BLOCKS * 16:])
    return message, key


def _reference(message: bytes, key: bytes) -> int:
    sbox = _aes_sbox()
    perm = _shift_rows_permutation()
    prev = [0] * 16
    checksum = 0
    for block in range(N_BLOCKS):
        state = [
            message[16 * block + i] ^ prev[i] for i in range(16)
        ]
        for rnd in range(1, N_ROUNDS + 1):
            substituted = [sbox[state[perm[i]]] for i in range(16)]
            state = [
                substituted[i] ^ sbox[(key[i] + rnd) & 0xFF]
                for i in range(16)
            ]
        prev = state
        for word_index in range(4):
            word = int.from_bytes(
                bytes(state[4 * word_index:4 * word_index + 4]), "little"
            )
            checksum = to_u32(checksum * 33) ^ word
    return to_u32(checksum)


def build() -> Workload:
    message, key = _inputs()
    sbox = bytes(_aes_sbox())
    perm = bytes(_shift_rows_permutation())
    source = f"""
# rijndael: AES-style SubBytes/ShiftRows/AddRoundKey rounds, CBC over
# {N_BLOCKS} blocks.
main:
    la   s0, input
    la   s1, state
    la   s2, tmpst
    la   s3, sbox
    la   s4, perm
    la   s5, key
    la   s6, prev
    li   a0, 0
    li   s7, 0              # block index
block_loop:
    li   t0, 16             # state = input_block xor prev
    li   t1, 0
ld_state:
    add  t2, s0, t1
    lbu  t3, 0(t2)
    add  t4, s6, t1
    lbu  t5, 0(t4)
    xor  t3, t3, t5
    add  t6, s1, t1
    sb   t3, 0(t6)
    addi t1, t1, 1
    blt  t1, t0, ld_state
    li   s8, 1              # round counter 1..{N_ROUNDS}
round_loop:
    li   t1, 0              # SubBytes + ShiftRows combined gather
sub_shift:
    add  t2, s4, t1
    lbu  t3, 0(t2)          # perm[i]
    add  t4, s1, t3
    lbu  t5, 0(t4)          # state[perm[i]]
    add  t6, s3, t5
    lbu  a1, 0(t6)          # sbox lookup
    add  a2, s2, t1
    sb   a1, 0(a2)
    addi t1, t1, 1
    li   t0, 16
    blt  t1, t0, sub_shift
    li   t1, 0              # AddRoundKey with derived round key
addkey:
    add  t2, s5, t1
    lbu  t3, 0(t2)          # key[i]
    add  t3, t3, s8
    andi t3, t3, 0xff
    add  t4, s3, t3
    lbu  t5, 0(t4)          # sbox[(key[i]+round) & 0xff]
    add  t6, s2, t1
    lbu  a1, 0(t6)
    xor  a1, a1, t5
    add  a2, s1, t1
    sb   a1, 0(a2)
    addi t1, t1, 1
    li   t0, 16
    blt  t1, t0, addkey
    addi s8, s8, 1
    li   t0, {N_ROUNDS + 1}
    blt  s8, t0, round_loop
    li   t1, 0              # prev = state (CBC chaining)
copyprev:
    add  t2, s1, t1
    lbu  t3, 0(t2)
    add  t4, s6, t1
    sb   t3, 0(t4)
    addi t1, t1, 1
    li   t0, 16
    blt  t1, t0, copyprev
    li   t1, 0              # fold the state into the checksum
ckw:
    add  t2, s1, t1
    lw   t3, 0(t2)
    li   t4, 33
    mul  a0, a0, t4
    xor  a0, a0, t3
    addi t1, t1, 4
    li   t0, 16
    blt  t1, t0, ckw
    addi s0, s0, 16
    addi s7, s7, 1
    li   t0, {N_BLOCKS}
    blt  s7, t0, block_loop
    li   a7, 93
    ecall

.data
state: .space 16
tmpst: .space 16
prev:  .space 16
{bytes_directive("input", message)}
{bytes_directive("key", key)}
{bytes_directive("perm", perm)}
{bytes_directive("sbox", sbox)}
"""
    return Workload(
        name="rijndael",
        category="security",
        description="AES-style rounds (real S-box) with CBC chaining",
        source=source,
        expected_checksum=_reference(message, key),
    )
