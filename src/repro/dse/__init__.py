"""Design-space exploration over fabric geometries (paper Fig. 6)."""

from repro.dse.pareto import pareto_front
from repro.dse.sweep import DSEPoint, run_design_point, sweep

__all__ = ["DSEPoint", "pareto_front", "run_design_point", "sweep"]
