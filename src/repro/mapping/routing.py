"""Per-column context-line pressure model for placed units.

PR 2's mappers treated the left-to-right context-line interconnect as
infinite: any dependence-ordered placement was "legal", even when more
live values had to cross a column boundary than the fabric has lines.
This module makes routability first-class:

* :func:`value_intervals` derives, from a placement and its window,
  the live interval of every routed value — produced at the producer's
  end column, carried until its right-most consumer;
* :func:`routing_profile` folds the intervals into a
  :class:`RoutingProfile`: per-boundary context-line pressure plus
  per-column input-context (immediate / live-in) occupancy, via the
  shared arithmetic in :mod:`repro.cgra.interconnect`;
* :func:`routing_violations` turns a profile into legality findings
  against a geometry's *declared* routing budget
  (:attr:`repro.cgra.fabric.FabricGeometry.routing_budget`).

Only values produced **inside** the window occupy context lines:
immediates and window live-ins enter through the per-column input
context (the ``imm_slots`` of the hw model's wrap design) and are
reported separately. Memory dependences order placements but carry no
line value (they flow through the cache ports).

Consistency: the edge set here must match the dependence oracle
(:func:`repro.dbt.dfg.build_dfg`'s ``raw`` edges) and the incremental
bookkeeping of :class:`repro.dbt.scheduler.SchedulerState`; the
property tests in ``tests/test_mapping_routing.py`` pin all three to
each other.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.cgra.configuration import VirtualConfiguration
from repro.cgra.fabric import FabricGeometry
from repro.cgra.interconnect import OPERANDS_PER_FU, pressure_profile
from repro.dbt.dfg import source_registers
from repro.kernels.pressure import N_REGS, routing_profile_arrays
from repro.sim.trace import TraceRecord


@dataclass(frozen=True)
class RoutingProfile:
    """Interconnect occupancy of one placed unit.

    Attributes:
        pressure: entry ``b`` counts the live values crossing into
            column ``b`` on context lines.
        input_slots: entry ``c`` counts the operands column ``c``
            sources from the input context (immediates plus operands
            produced before the window).
        ctx_lines: the hard line budget the profile was checked
            against, or ``None`` when the geometry routes elastically.
    """

    pressure: np.ndarray
    input_slots: np.ndarray
    ctx_lines: int | None

    @property
    def peak_pressure(self) -> int:
        """Worst per-boundary context-line demand."""
        return int(self.pressure.max()) if self.pressure.size else 0

    @property
    def peak_input_slots(self) -> int:
        """Worst per-column input-context demand (structurally bounded
        by ``rows * OPERANDS_PER_FU`` operand muxes)."""
        return int(self.input_slots.max()) if self.input_slots.size else 0

    def overflowed_columns(self) -> tuple[int, ...]:
        """Columns whose line pressure exceeds the budget (empty when
        the budget is elastic)."""
        if self.ctx_lines is None:
            return ()
        return tuple(
            int(col) for col in np.nonzero(self.pressure > self.ctx_lines)[0]
        )

    @property
    def ok(self) -> bool:
        return not self.overflowed_columns()


def value_intervals(
    unit: VirtualConfiguration, records: Sequence[TraceRecord]
) -> list[tuple[int, int]]:
    """Live interval ``(first, last)`` of every routed value.

    One interval per *placed producer* with at least one placed
    consumer: available at the producer's end column, alive through the
    start column of its right-most consumer. Register identity is
    resolved in program order (a later write to the same register
    starts a new value; the old one stays live for its own consumers),
    matching ``build_dfg``'s ``raw`` edges exactly.
    """
    ops_by_offset = {op.trace_offset: op for op in unit.ops}
    last_writer: dict[int, int] = {}
    last_use: dict[int, int] = {}  # producer offset -> right-most consumer col
    for offset, record in enumerate(records[: unit.n_instructions]):
        consumer = ops_by_offset.get(offset)
        if consumer is not None:
            for reg in source_registers(record):
                producer = last_writer.get(reg)
                if producer is None or producer not in ops_by_offset:
                    continue  # live-in: arrives via the input context
                last_use[producer] = max(
                    last_use.get(producer, -1), consumer.col
                )
        if record.rd is not None:
            last_writer[record.rd] = offset
    return [
        (ops_by_offset[producer].end_col, last)
        for producer, last in last_use.items()
    ]


def input_slot_counts(
    unit: VirtualConfiguration, records: Sequence[TraceRecord]
) -> np.ndarray:
    """Per-column input-context operand counts (immediates + live-ins).

    Each counted operand occupies one of the column's
    ``rows * OPERANDS_PER_FU`` operand muxes fed from the input
    context, so the count can never exceed that structural ceiling; it
    is reported for sizing studies, not enforced.
    """
    counts = np.zeros(unit.geometry_cols, dtype=np.int64)
    ops_by_offset = {op.trace_offset: op for op in unit.ops}
    last_writer: dict[int, int] = {}
    for offset, record in enumerate(records[: unit.n_instructions]):
        consumer = ops_by_offset.get(offset)
        if consumer is not None:
            if record.imm is not None:
                counts[consumer.col] += 1
            for reg in source_registers(record):
                producer = last_writer.get(reg)
                if producer is None or producer not in ops_by_offset:
                    counts[consumer.col] += 1
        if record.rd is not None:
            last_writer[record.rd] = offset
    return counts


def input_slot_capacity(geometry: FabricGeometry) -> int:
    """Structural ceiling of per-column input-context operands: every
    FU operand mux in the column can source one input-context word."""
    return geometry.rows * OPERANDS_PER_FU


#: Memoised static per-record arrays for the fused profile kernel,
#: keyed by window identity (first/last record object ids + length).
#: Each entry stores the records themselves, pinning the keyed ids, so
#: a cached key can never be recycled; bounded because profile calls
#: cycle over a trace's window working set.
_RECORD_ARRAYS_MEMO: dict[tuple[int, int, int], tuple] = {}


def _record_arrays(
    records: Sequence[TraceRecord], n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, bool]:
    """Placement-independent record arrays for the fused kernel:
    ``(src, rd, has_imm, ok)`` — source registers (``-1`` padded,
    duplicates kept), destination register (``-1`` none), immediate
    flags. ``ok`` is ``False`` when any register exceeds the kernel's
    last-writer table (:data:`repro.kernels.pressure.N_REGS`)."""
    key = (id(records[0]), id(records[n - 1]), n) if n else (0, 0, 0)
    entry = _RECORD_ARRAYS_MEMO.get(key)
    if entry is None:
        if len(_RECORD_ARRAYS_MEMO) >= 512:
            _RECORD_ARRAYS_MEMO.clear()
        src = np.full((n, 2), -1, dtype=np.int64)
        rd = np.full(n, -1, dtype=np.int64)
        has_imm = np.zeros(n, dtype=np.bool_)
        ok = True
        for offset in range(n):
            record = records[offset]
            for slot, reg in enumerate(source_registers(record)):
                src[offset, slot] = reg
                ok = ok and reg < N_REGS
            if record.rd is not None:
                rd[offset] = record.rd
                ok = ok and record.rd < N_REGS
            has_imm[offset] = record.imm is not None
        entry = (tuple(records[:n]), src, rd, has_imm, ok)
        _RECORD_ARRAYS_MEMO[key] = entry
    return entry[1], entry[2], entry[3], entry[4]


def routing_profile(
    unit: VirtualConfiguration,
    records: Sequence[TraceRecord],
    geometry: FabricGeometry | None = None,
) -> RoutingProfile:
    """Compute the unit's interconnect occupancy.

    ``geometry`` supplies the line budget; omitted, it is derived from
    the unit's grid shape (default sizing — elastic routing, profile
    still computed for reporting).

    Under the numba kernel backend the whole profile — register
    resolution, interval derivation, the diff-array fold and the
    input-slot counts — runs as one compiled pass
    (:data:`repro.kernels.pressure.routing_profile_arrays`) over
    memoised per-record arrays; the Python path below stays the
    reference and the equivalence suite pins the two together.
    """
    if geometry is None:
        geometry = FabricGeometry(
            rows=unit.geometry_rows, cols=unit.geometry_cols
        )
    compiled = routing_profile_arrays.compiled()
    if compiled is not None:
        n = min(len(records), unit.n_instructions)
        src, rd, has_imm, ok = _record_arrays(records, n)
        if ok:
            placed_col = np.full(n, -1, dtype=np.int64)
            placed_end = np.full(n, -1, dtype=np.int64)
            for op in unit.ops:
                offset = op.trace_offset
                if offset < n:
                    placed_col[offset] = op.col
                    placed_end[offset] = op.end_col
            pressure, input_slots = compiled(
                placed_col, placed_end, src, rd, has_imm, unit.geometry_cols
            )
            return RoutingProfile(
                pressure=pressure,
                input_slots=input_slots,
                ctx_lines=geometry.routing_budget,
            )
    return RoutingProfile(
        pressure=pressure_profile(
            value_intervals(unit, records), unit.geometry_cols
        ),
        input_slots=input_slot_counts(unit, records),
        ctx_lines=geometry.routing_budget,
    )


def routing_violations(
    unit: VirtualConfiguration,
    records: Sequence[TraceRecord],
    geometry: FabricGeometry | None = None,
) -> tuple[str, ...]:
    """Legality findings for the unit's routing, empty when routable.

    With no declared budget the check is vacuous (elastic routing) —
    which is exactly the default pipeline's contract, so running the
    oracle unconditionally cannot perturb the paper reproduction.
    """
    profile = routing_profile(unit, records, geometry)
    return tuple(
        f"context-line overflow entering column {col}: "
        f"{int(profile.pressure[col])} live values > "
        f"{profile.ctx_lines} lines"
        for col in profile.overflowed_columns()
    )
