"""Set-associative cache timing model with true-LRU replacement.

Only hit/miss behaviour is modelled — no data storage — because the
functional simulator already provides values. The model is shared by
the instruction and data caches of the GPP and sized like the paper's
embedded Rocket configuration by default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheParams:
    """Geometry and penalty of one cache.

    Attributes:
        size_bytes: total capacity.
        line_bytes: cache line size.
        ways: associativity.
        miss_penalty: extra cycles charged on a miss.
    """

    size_bytes: int = 16 * 1024
    line_bytes: int = 64
    ways: int = 4
    miss_penalty: int = 20

    def __post_init__(self) -> None:
        for name in ("size_bytes", "line_bytes", "ways"):
            if not _is_power_of_two(getattr(self, name)):
                raise ConfigurationError(f"{name} must be a power of two")
        if self.size_bytes < self.line_bytes * self.ways:
            raise ConfigurationError("cache smaller than one set")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


class CacheModel:
    """Hit/miss simulator for one cache."""

    def __init__(self, params: CacheParams) -> None:
        self.params = params
        self._offset_bits = params.line_bytes.bit_length() - 1
        self._set_mask = params.n_sets - 1
        # Per-set list of tags in LRU order (index 0 = most recent).
        self._sets: list[list[int]] = [[] for _ in range(params.n_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch ``address``; return ``True`` on hit."""
        line = address >> self._offset_bits
        tags = self._sets[line & self._set_mask]
        tag = line >> (self._set_mask.bit_length())
        try:
            tags.remove(tag)
        except ValueError:
            self.misses += 1
            tags.insert(0, tag)
            if len(tags) > self.params.ways:
                tags.pop()
            return False
        self.hits += 1
        tags.insert(0, tag)
        return True

    def access_cycles(self, address: int) -> int:
        """Touch ``address``; return the miss penalty incurred (0 on hit)."""
        return 0 if self.access(address) else self.params.miss_penalty

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
