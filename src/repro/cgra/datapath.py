"""Execution timing of a configuration on the fabric.

The fabric is combinational: two ALU columns evaluate per processor
cycle. Executing a configuration costs::

    cycles = reconfiguration + input-context load
           + ceil(used_cols / COLUMNS_PER_CYCLE) + write-back

Reconfiguration streams one configuration word per configuration line
per cycle (Fig. 5a): ``ceil(used_cols / n_config_lines)`` cycles, which
can overlap the previous unit's write-back when ``overlap_reconfig`` is
set (the TransRec default). The utilization-aware allocation adds *no*
cycles: the line-select muxes and barrel shifters sit in the
configuration path, not the execution path (Section III-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cgra.configuration import VirtualConfiguration
from repro.cgra.fabric import FabricGeometry
from repro.cgra.fu import COLUMNS_PER_CYCLE


@dataclass(frozen=True)
class DatapathParams:
    """Fixed timing parameters of the CGRA datapath.

    Attributes:
        columns_per_cycle: combinational ALU columns per processor cycle.
        input_context_cycles: cycles to load the input register context.
        writeback_cycles: cycles to commit results through the ROB.
        overlap_reconfig: whether configuration loading overlaps the
            previous execution (hides most of the reconfig latency).
        misspeculation_penalty: extra cycles when a unit aborts on a
            divergent branch (squash + GPP restart).
    """

    columns_per_cycle: int = COLUMNS_PER_CYCLE
    input_context_cycles: int = 1
    writeback_cycles: int = 1
    overlap_reconfig: bool = True
    #: Back-to-back configuration launches overlap the write-back of
    #: one unit with the input-context load of the next (Steps 5/7 of
    #: the execution model run concurrently across units).
    overlap_io: bool = True
    misspeculation_penalty: int = 4


def reconfiguration_cycles(
    geometry: FabricGeometry, config: VirtualConfiguration
) -> int:
    """Cycles to stream a configuration into the context registers."""
    return math.ceil(config.used_cols / geometry.n_config_lines)


def execution_cycles(params: DatapathParams, config: VirtualConfiguration) -> int:
    """Pure compute cycles for the combinational column chain."""
    return math.ceil(config.used_cols / params.columns_per_cycle)


def configuration_cycles(
    geometry: FabricGeometry,
    params: DatapathParams,
    config: VirtualConfiguration,
    cold: bool = False,
    back_to_back: bool = False,
) -> int:
    """Total cycles for one launch of ``config``.

    Args:
        geometry: fabric shape (determines reconfiguration bandwidth).
        params: datapath timing parameters.
        config: the unit being launched.
        cold: when ``True`` the reconfiguration cannot be overlapped
            (first launch after a config-cache refill).
        back_to_back: the previous instruction window also ran on the
            fabric, so I/O stages overlap under ``overlap_io``.
    """
    cycles = execution_cycles(params, config)
    if not (back_to_back and params.overlap_io):
        cycles += params.input_context_cycles + params.writeback_cycles
    if cold and not (back_to_back and params.overlap_reconfig):
        cycles += reconfiguration_cycles(geometry, config)
    return cycles
