"""Tests for fabric geometry, FU latencies and configurations."""

import pytest

from repro.cgra.configuration import PlacedOp, VirtualConfiguration
from repro.cgra.fabric import FabricGeometry
from repro.cgra.fu import (
    COLUMNS_PER_CYCLE,
    FUKind,
    fu_kind_for,
    is_mappable,
    latency_columns,
)
from repro.errors import ConfigurationError
from repro.isa.instructions import InstrClass


class TestGeometry:
    def test_basic_properties(self):
        geometry = FabricGeometry(rows=2, cols=16)
        assert geometry.n_cells == 32
        assert str(geometry) == "L16xW2"

    def test_default_ctx_lines(self):
        assert FabricGeometry(rows=4, cols=8).ctx_lines == 8

    def test_cells_iteration_raster_order(self):
        geometry = FabricGeometry(rows=2, cols=3)
        assert list(geometry.cells()) == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)
        ]

    def test_contains(self):
        geometry = FabricGeometry(rows=2, cols=4)
        assert geometry.contains(1, 3)
        assert not geometry.contains(2, 0)
        assert not geometry.contains(0, 4)
        assert not geometry.contains(-1, 0)

    def test_wrap(self):
        geometry = FabricGeometry(rows=2, cols=4)
        assert geometry.wrap(2, 4) == (0, 0)
        assert geometry.wrap(3, 5) == (1, 1)
        assert geometry.wrap(-1, -1) == (1, 3)

    def test_cell_index(self):
        geometry = FabricGeometry(rows=2, cols=4)
        assert geometry.cell_index(0, 0) == 0
        assert geometry.cell_index(1, 3) == 7
        with pytest.raises(ConfigurationError):
            geometry.cell_index(2, 0)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            FabricGeometry(rows=0, cols=8)
        with pytest.raises(ConfigurationError):
            FabricGeometry(rows=64, cols=8)
        with pytest.raises(ConfigurationError):
            FabricGeometry(rows=2, cols=1)
        with pytest.raises(ConfigurationError):
            FabricGeometry(rows=2, cols=8, n_config_lines=0)
        with pytest.raises(ConfigurationError):
            FabricGeometry(rows=4, cols=8, ctx_lines=2)


class TestFUKinds:
    def test_latencies_match_paper(self):
        assert latency_columns(FUKind.ALU) == 1
        assert latency_columns(FUKind.LOAD) == 4
        assert latency_columns(FUKind.STORE) == 4
        assert COLUMNS_PER_CYCLE == 2  # ALU = half processor cycle

    def test_class_mapping(self):
        assert fu_kind_for(InstrClass.ALU) is FUKind.ALU
        assert fu_kind_for(InstrClass.MUL) is FUKind.MUL
        assert fu_kind_for(InstrClass.LOAD) is FUKind.LOAD
        assert fu_kind_for(InstrClass.STORE) is FUKind.STORE
        assert fu_kind_for(InstrClass.BRANCH) is FUKind.ALU

    def test_unmappable_classes(self):
        assert fu_kind_for(InstrClass.DIV) is None
        assert fu_kind_for(InstrClass.SYSTEM) is None
        assert fu_kind_for(InstrClass.JUMP) is None
        assert not is_mappable(InstrClass.DIV)


def make_config(ops, rows=2, cols=8, start_pc=0x1000):
    return VirtualConfiguration(
        start_pc=start_pc,
        pc_path=tuple(start_pc + 4 * i for i in range(len(ops))),
        ops=tuple(ops),
        n_instructions=len(ops),
        geometry_rows=rows,
        geometry_cols=cols,
    )


def alu_op(row, col, offset=0, op="add"):
    return PlacedOp(op=op, kind=FUKind.ALU, row=row, col=col, width=1,
                    trace_offset=offset)


class TestVirtualConfiguration:
    def test_bounding_box(self):
        config = make_config([alu_op(0, 0), alu_op(1, 2)])
        assert config.used_rows == 2
        assert config.used_cols == 3
        assert config.n_ops == 2

    def test_cells_cover_op_width(self):
        load = PlacedOp(op="lw", kind=FUKind.LOAD, row=0, col=2, width=4,
                        trace_offset=0)
        config = make_config([load])
        assert config.cells == ((0, 2), (0, 3), (0, 4), (0, 5))

    def test_occupancy(self):
        config = make_config([alu_op(0, 0), alu_op(0, 1)], rows=2, cols=8)
        assert config.occupancy == pytest.approx(2 / 16)

    def test_overlap_rejected(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            make_config([alu_op(0, 0), alu_op(0, 0, offset=1)])

    def test_out_of_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            make_config([alu_op(5, 0)], rows=2)
        with pytest.raises(ConfigurationError):
            make_config([alu_op(0, 9)], cols=8)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            make_config([])

    def test_branch_count(self):
        branch = PlacedOp(op="beq", kind=FUKind.ALU, row=0, col=1, width=1,
                          trace_offset=1, is_branch=True)
        config = make_config([alu_op(0, 0), branch])
        assert config.n_branches == 1
