"""Compiled SA move/cost kernel for the annealing mapper.

One function runs every sweep of
:meth:`repro.mapping.annealing.SimulatedAnnealingMapper._anneal` over
CSR-packed state arrays: the bitmask exclusivity check, the
incremental congestion excess (live-interval deltas against the
per-boundary pressure profile), the row-balance and cumulative-sum
stress deltas, the critical-path term, and the Metropolis accept —
exactly the arithmetic of ``_AnnealState.try_move``/``commit``, in the
same floating-point operation order, consuming pre-drawn per-sweep
random batches in the generator's draw order. The Python loop stays
the reference; this kernel only ever runs compiled
(``anneal_sweeps.compiled()``), and the equivalence suite pins the two
to bit-identical placements.

Packing contract (see ``_AnnealState.pack_kernel_args``): occupancy
bitmasks are int64, so the kernel requires ``col_cap <= 62``; ``-1``
encodes an elastic ``line_limit``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels.backend import Kernel


def _anneal_sweeps_py(
    op_rows: np.ndarray,
    op_cols: np.ndarray,
    widths: np.ndarray,
    end_cols: np.ndarray,
    preds_ptr: np.ndarray,
    preds_ix: np.ndarray,
    succs_ptr: np.ndarray,
    succs_ix: np.ndarray,
    rawp_ptr: np.ndarray,
    rawp_ix: np.ndarray,
    raws_ptr: np.ndarray,
    raws_ix: np.ndarray,
    peers_ptr: np.ndarray,
    peers_ix: np.ndarray,
    busy: np.ndarray,
    row_counts: np.ndarray,
    line_pressure: np.ndarray,
    stress_cum: np.ndarray,
    has_stress: bool,
    pick_op: np.ndarray,
    pick_row: np.ndarray,
    pick_frac: np.ndarray,
    pick_accept: np.ndarray,
    col_cap: int,
    used_max: int,
    total_cells: int,
    line_limit: int,
    line_soft_cap: int,
    port_gap: int,
    cp_weight: float,
    balance_weight: float,
    stress_weight: float,
    congestion_weight: float,
    t0: float,
    cooling: float,
    best_rows: np.ndarray,
    best_cols: np.ndarray,
) -> tuple[float, float]:
    """Run all sweeps in place; returns ``(cost_delta, best_delta)``.

    Mutates the working placement arrays (``op_rows`` .. ``busy`` ..
    ``line_pressure``) and writes the best-seen placement into
    ``best_rows``/``best_cols``.
    """
    n_ops = op_rows.shape[0]
    n_boundaries = line_pressure.shape[0]
    norm = total_cells if total_cells > 1 else 1
    cong_active = congestion_weight != 0.0 or line_limit >= 0
    # Scratch for per-proposal line-pressure deltas: a dense delta
    # array plus a touched-boundary list, zeroed again after every
    # proposal so no allocation happens inside the loop.
    delta_buf = np.zeros(n_boundaries, dtype=np.int64)
    in_touched = np.zeros(n_boundaries, dtype=np.uint8)
    touched = np.empty(n_boundaries, dtype=np.int64)
    temperature = t0
    cost_delta = 0.0
    best_delta = 0.0
    for sweep in range(pick_op.shape[0]):
        for k in range(pick_op.shape[1]):
            index = pick_op[sweep, k]
            width = widths[index]
            # Dependence-legal start-column window.
            lo = 0
            for p in range(preds_ptr[index], preds_ptr[index + 1]):
                end = end_cols[preds_ix[p]]
                if end > lo:
                    lo = end
            hi = col_cap - width
            for s in range(succs_ptr[index], succs_ptr[index + 1]):
                bound = op_cols[succs_ix[s]] - width
                if bound < hi:
                    hi = bound
            if hi < lo:
                continue
            new_row = pick_row[sweep, k]
            new_col = lo + int(pick_frac[sweep, k] * (hi - lo + 1))
            if new_col > hi:
                new_col = hi
            old_row = op_rows[index]
            old_col = op_cols[index]
            if new_row == old_row and new_col == old_col:
                continue
            move_mask = ((1 << width) - 1) << new_col
            occupied = busy[new_row]
            if new_row == old_row:
                occupied &= ~(((1 << width) - 1) << old_col)
            if occupied & move_mask:
                continue
            clash = False
            for p in range(peers_ptr[index], peers_ptr[index + 1]):
                gap = new_col - op_cols[peers_ix[p]]
                if gap < 0:
                    gap = -gap
                if gap < port_gap:
                    clash = True
                    break
            if clash:
                continue
            # From here on no `continue`: the line-delta scratch must
            # be zeroed again at the end of the proposal body.
            legal = True
            delta = 0.0
            n_touched = 0
            if cong_active:
                # Producers whose live interval the move changes: every
                # raw pred of the moved op, plus the op itself when it
                # produces a routed value.
                n_producers = rawp_ptr[index + 1] - rawp_ptr[index]
                extra_self = 1 if raws_ptr[index + 1] > raws_ptr[index] else 0
                for t in range(n_producers + extra_self):
                    if t < n_producers:
                        producer = rawp_ix[rawp_ptr[index] + t]
                    else:
                        producer = index
                    r0 = raws_ptr[producer]
                    r1 = raws_ptr[producer + 1]
                    if r1 == r0:
                        continue  # no consumers: interval empty both ways
                    # Current live interval of the producer's value.
                    old_first = end_cols[producer]
                    old_last = op_cols[raws_ix[r0]]
                    for q in range(r0 + 1, r1):
                        col = op_cols[raws_ix[q]]
                        if col > old_last:
                            old_last = col
                    if old_last < old_first:
                        old_first = 0
                        old_last = -1
                    # Interval with op `index` relocated to new_col.
                    if producer == index:
                        new_first = new_col + width
                    else:
                        new_first = end_cols[producer]
                    consumer = raws_ix[r0]
                    new_last = new_col if consumer == index else op_cols[consumer]
                    for q in range(r0 + 1, r1):
                        consumer = raws_ix[q]
                        col = new_col if consumer == index else op_cols[consumer]
                        if col > new_last:
                            new_last = col
                    if new_last < new_first:
                        new_first = 0
                        new_last = -1
                    if old_first == new_first and old_last == new_last:
                        continue
                    for b in range(old_first, old_last + 1):
                        if in_touched[b] == 0:
                            in_touched[b] = 1
                            touched[n_touched] = b
                            n_touched += 1
                        delta_buf[b] -= 1
                    for b in range(new_first, new_last + 1):
                        if in_touched[b] == 0:
                            in_touched[b] = 1
                            touched[n_touched] = b
                            n_touched += 1
                        delta_buf[b] += 1
                raw = 0
                for t in range(n_touched):
                    b = touched[t]
                    change = delta_buf[b]
                    if change == 0:
                        continue
                    pressure = line_pressure[b]
                    if line_limit >= 0 and change > 0 and (
                        pressure + change > line_limit
                    ):
                        legal = False  # would overflow a context line
                        break
                    old_excess = pressure - line_soft_cap
                    if old_excess < 0:
                        old_excess = 0
                    new_excess = pressure + change - line_soft_cap
                    if new_excess < 0:
                        new_excess = 0
                    raw += new_excess * new_excess - old_excess * old_excess
                if legal:
                    delta += congestion_weight * raw / norm
            if legal:
                if new_row != old_row:
                    n_old = row_counts[old_row]
                    n_new = row_counts[new_row]
                    braw = (
                        (n_old - width) ** 2
                        + (n_new + width) ** 2
                        - n_old**2
                        - n_new**2
                    )
                    delta += balance_weight * braw / norm
                if has_stress:
                    stress_new = (
                        stress_cum[new_row, new_col + width]
                        - stress_cum[new_row, new_col]
                    )
                    stress_old = (
                        stress_cum[old_row, old_col + width]
                        - stress_cum[old_row, old_col]
                    )
                    delta += stress_weight * (stress_new - stress_old)
                else:
                    delta += stress_weight * 0.0
                new_end = new_col + width
                if new_end >= used_max:
                    used_after = new_end
                elif end_cols[index] < used_max:
                    used_after = used_max
                else:
                    # The moved op held the maximum: re-reduce.
                    used_after = new_end
                    for other in range(n_ops):
                        if other != index and end_cols[other] > used_after:
                            used_after = end_cols[other]
                delta += cp_weight * (used_after - used_max)
                if delta <= 0.0 or (
                    pick_accept[sweep, k] < math.exp(-delta / temperature)
                ):
                    # Commit.
                    used_max = used_after
                    for t in range(n_touched):
                        b = touched[t]
                        line_pressure[b] += delta_buf[b]
                    busy[old_row] &= ~(((1 << width) - 1) << old_col)
                    busy[new_row] |= move_mask
                    row_counts[old_row] -= width
                    row_counts[new_row] += width
                    op_rows[index] = new_row
                    op_cols[index] = new_col
                    end_cols[index] = new_end
                    cost_delta += delta
                    if cost_delta < best_delta - 1e-12:
                        best_delta = cost_delta
                        for i in range(n_ops):
                            best_rows[i] = op_rows[i]
                            best_cols[i] = op_cols[i]
            # Zero the scratch for the next proposal.
            for t in range(n_touched):
                b = touched[t]
                delta_buf[b] = 0
                in_touched[b] = 0
        temperature *= cooling
    return cost_delta, best_delta


anneal_sweeps = Kernel("anneal_sweeps", _anneal_sweeps_py)
