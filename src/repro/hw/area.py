"""CGRA area rollup: baseline vs modified (Table II).

The baseline fabric is summed structurally from its components; the
modified design adds the paper's three extensions:

1. per-column configuration-line select muxes (horizontal movement);
2. per-column barrel rotators on the row-indexed configuration register
   groups (vertical movement);
3. wrap-around steering per context line. The extra data input *folds
   into the existing output-crossbar mux tree*: for all fabric widths
   in the design space (W in {2,4,8}), ``W+2`` inputs need the same
   tree depth and cell count budget as ``W+1`` (the tree has spare
   leaves), so the datapath cost is one steering register bit per
   context line per column — this is also why the critical path is
   unchanged (Section V-B).

One pair of calibration factors (``cell_scale``, ``area_scale``) maps
structural counts to post-synthesis totals (buffers, clock tree,
routing overhead); they are fitted once so the BE baseline lands in
Table II's band and cancel exactly in every reported ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cgra.fabric import FabricGeometry
from repro.cgra.interconnect import InterconnectSpec
from repro.cgra.reconfig import ReconfigLogicSpec
from repro.hw import components as comp
from repro.hw.cells import CellCounts

#: Fitted once against Table II's baseline (28,995 um^2 / 79,540 cells
#: for the 16x2 BE design); see module docstring.
DEFAULT_CELL_SCALE = 2.05
DEFAULT_AREA_SCALE = 2.35


@dataclass(frozen=True)
class AreaBreakdown:
    """Area result for one design point."""

    structural: CellCounts
    cell_scale: float
    area_scale: float

    @property
    def n_cells(self) -> int:
        """Post-synthesis cell estimate."""
        return round(self.structural.n_cells() * self.cell_scale)

    @property
    def area_um2(self) -> float:
        """Post-synthesis area estimate."""
        return self.structural.area_um2() * self.area_scale

    @property
    def leakage_nw(self) -> float:
        """Static leakage estimate (same scale as cells)."""
        return self.structural.leakage_nw() * self.cell_scale


class CGRAAreaModel:
    """Structural area model for one fabric geometry."""

    def __init__(
        self,
        geometry: FabricGeometry,
        rob_entries: int | None = None,
        cell_scale: float = DEFAULT_CELL_SCALE,
        area_scale: float = DEFAULT_AREA_SCALE,
    ) -> None:
        self.geometry = geometry
        self.rob_entries = (
            rob_entries if rob_entries is not None else 4 * geometry.rows
        )
        self.cell_scale = cell_scale
        self.area_scale = area_scale
        self._interconnect = InterconnectSpec(geometry)
        self._reconfig = ReconfigLogicSpec(geometry)

    # -- baseline ------------------------------------------------------

    def baseline_counts(self) -> CellCounts:
        """Structural cells of the unmodified TransRec fabric."""
        g = self.geometry
        ic = self._interconnect
        counts = comp.alu32().scaled(g.n_cells)
        counts += comp.multiplier32().scaled(g.rows)
        counts += comp.memory_unit("load") + comp.memory_unit("store")
        # Input crossbar: per column, one ctx_lines:1 word mux per FU operand.
        in_xbar = comp.mux_tree(ic.input_mux_inputs, comp.WORD_BITS).scaled(
            ic.input_muxes_per_column
        )
        # Output crossbar: per column, one (rows+1):1 word mux per ctx line.
        out_xbar = comp.mux_tree(ic.output_mux_inputs, comp.WORD_BITS).scaled(
            ic.output_muxes_per_column
        )
        # Context pipeline registers: ctx_lines words per column.
        ctx_regs = comp.register(g.ctx_lines * comp.WORD_BITS)
        # Configuration registers for the column.
        cfg_regs = comp.register(self._reconfig.config_bits_per_column)
        per_column = in_xbar + out_xbar + ctx_regs + cfg_regs
        counts += per_column.scaled(g.cols)
        counts += comp.rob(self.rob_entries)
        counts += comp.input_context(g.ctx_lines, imm_slots=g.rows)
        counts += comp.control_unit()
        return counts

    # -- proposed extensions --------------------------------------------

    def extension_counts(self) -> CellCounts:
        """Structural cells added by the utilization-aware extensions."""
        g = self.geometry
        rc = self._reconfig
        # 1. Horizontal movement: n:1 mux in front of every column's
        #    configuration register (Fig. 5b), full config-word wide.
        line_mux = comp.mux_tree(
            rc.line_mux_inputs, rc.config_bits_per_column
        )
        # 3. Wrap-around: the data input folds into the output-crossbar
        #    tree (see module docstring); only steering state is added.
        wrap_steering = comp.register(g.ctx_lines)
        per_column = (line_mux + wrap_steering).scaled(g.cols)
        # 2. Vertical movement: barrel rotators over the row-indexed
        #    register groups (Fig. 5c). The rotation amount is one per
        #    configuration, so one rotator per configuration *line*
        #    (before the fan-out to columns) suffices.
        rotator = comp.barrel_rotator(
            rc.barrel_rotator_positions,
            rc.rotated_bits_per_column() // max(1, g.rows),
        ).scaled(g.n_config_lines)
        return per_column + rotator

    def modified_counts(self) -> CellCounts:
        """Structural cells of the fabric with the extensions."""
        return self.baseline_counts() + self.extension_counts()

    # -- reports ----------------------------------------------------------

    def baseline(self) -> AreaBreakdown:
        return AreaBreakdown(
            self.baseline_counts(), self.cell_scale, self.area_scale
        )

    def modified(self) -> AreaBreakdown:
        return AreaBreakdown(
            self.modified_counts(), self.cell_scale, self.area_scale
        )

    def overhead_fraction(self) -> float:
        """Relative area overhead of the extensions (Table II claim)."""
        base = self.baseline_counts().area_um2()
        extra = self.extension_counts().area_um2()
        return extra / base

    def cell_overhead_fraction(self) -> float:
        """Relative cell-count overhead of the extensions."""
        base = self.baseline_counts().n_cells()
        extra = self.extension_counts().n_cells()
        return extra / base
