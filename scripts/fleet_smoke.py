"""Fleet kill-and-resume smoke check (CI gate).

Usage::

    PYTHONPATH=src python scripts/fleet_smoke.py [--devices N] [--shards N]

Runs a small fleet campaign three ways and checks the invariants the
fleet service is built on:

1. **Sharded with store** — the reference run: every (policy, shard)
   record lands in the append-only NDJSON store.
2. **Kill-and-resume** — the store is damaged the two ways a killed
   shard worker leaves it (one complete record dropped, one trailing
   line torn mid-write); a fresh runner must resume from the intact
   records, re-run only the damaged shard, and produce **bit-identical**
   merged aggregates.
3. **Unsharded** — the same fleet as one giant shard; merged
   per-policy aggregates must agree with the sharded run (exactly for
   counts/extrema/histograms/survival, to float tolerance for the sums
   behind MTTF and mean worst-utilization, since float addition is not
   partition-associative).

Exit 0 on success, 1 with a diagnostic on any violation.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
from pathlib import Path

from repro.campaign.spec import PolicySpec
from repro.fleet import FleetRunner, FleetSpec

#: Keys of FleetAggregate.to_jsonable() that are pure-integer merges —
#: these must match *exactly* between sharded and unsharded runs.
EXACT_KEYS = ("devices", "survival")

#: Float-sum-derived keys: equal to tight tolerance across shardings.
CLOSE_KEYS = (
    "mttf_years",
    "lifetime_p50",
    "lifetime_p90",
    "lifetime_p99",
    "lifetime_min",
    "lifetime_max",
    "mean_worst_utilization",
    "max_worst_utilization",
)


def _policy_payloads(result) -> dict:
    return {
        name: aggregate.to_jsonable()
        for name, aggregate in result.aggregates.items()
    }


def _check_identical(label: str, left: dict, right: dict) -> None:
    left_text = json.dumps(left, sort_keys=True)
    right_text = json.dumps(right, sort_keys=True)
    if left_text != right_text:
        raise AssertionError(f"{label}: merged aggregates differ")


def _check_close(label: str, left: dict, right: dict) -> None:
    if left.keys() != right.keys():
        raise AssertionError(f"{label}: policy sets differ")
    for policy, l_agg in left.items():
        r_agg = right[policy]
        for key in EXACT_KEYS:
            if l_agg[key] != r_agg[key]:
                raise AssertionError(
                    f"{label}: {policy}.{key} {l_agg[key]!r} != {r_agg[key]!r}"
                )
        for key in CLOSE_KEYS:
            l_val, r_val = l_agg[key], r_agg[key]
            if l_val == r_val:
                continue
            if not math.isclose(l_val, r_val, rel_tol=1e-9, abs_tol=1e-12):
                raise AssertionError(
                    f"{label}: {policy}.{key} {l_val} !~ {r_val}"
                )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=512)
    parser.add_argument("--shards", type=int, default=2)
    args = parser.parse_args(argv)
    per_shard = -(-args.devices // args.shards)  # ceil division
    policies = (PolicySpec.make("baseline"), PolicySpec.make("stress_aware"))

    def spec(devices_per_shard: int) -> FleetSpec:
        return FleetSpec(
            name="fleet_smoke",
            rows=4,
            cols=4,
            policies=policies,
            scenario="telemetry_node",
            n_devices=args.devices,
            devices_per_shard=devices_per_shard,
            seed=11,
        )

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        sharded_spec = spec(per_shard)
        reference = FleetRunner(store_dir=store_dir).run(sharded_spec)
        if reference.shards_run != len(sharded_spec.shards()):
            raise AssertionError("reference run resumed from a fresh store")
        reference_payload = _policy_payloads(reference)

        # Damage the store the two ways a killed worker leaves it:
        # drop the last complete record, tear the one before mid-write.
        store_file = store_dir / "shards.ndjson"
        lines = store_file.read_text().splitlines(keepends=True)
        if len(lines) < 3:
            raise AssertionError("store too small to damage meaningfully")
        store_file.write_text("".join(lines[:-2]) + lines[-2][: len(lines[-2]) // 2])
        resumed = FleetRunner(store_dir=store_dir).run(sharded_spec)
        if resumed.shards_run == 0:
            raise AssertionError("resume re-ran nothing despite damage")
        if resumed.shards_resumed == 0:
            raise AssertionError("resume recomputed everything (store unread)")
        if resumed.store_lines_skipped != 1:
            raise AssertionError(
                f"expected 1 torn line skipped, got {resumed.store_lines_skipped}"
            )
        _check_identical(
            "kill-and-resume", reference_payload, _policy_payloads(resumed)
        )
        print(
            f"kill-and-resume: re-ran {resumed.shards_run} shard(s), resumed "
            f"{resumed.shards_resumed}, merged aggregates bit-identical"
        )

        unsharded = FleetRunner().run(spec(args.devices))
        _check_close(
            "sharded-vs-unsharded",
            reference_payload,
            _policy_payloads(unsharded),
        )
        print(
            f"sharded-vs-unsharded: {args.devices} devices x "
            f"{len(policies)} policies agree across shardings"
        )
    print("fleet smoke OK")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main(sys.argv[1:]))
    except AssertionError as error:
        print(f"fleet smoke FAILED: {error}", file=sys.stderr)
        raise SystemExit(1)
