"""Tests for the campaign subsystem (spec, runner, artifacts)."""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    PolicySpec,
    SuiteRun,
    evaluate_design_point,
    to_jsonable,
)
from repro.cgra.fabric import FabricGeometry
from repro.errors import ConfigurationError
from repro.workloads.suite import run_workload, workload_names

WORKLOADS = ("bitcount", "crc32")


def small_spec(**overrides):
    base = dict(
        geometries=((2, 8), (2, 16)),
        policies=(PolicySpec.make("baseline"), PolicySpec.make("rotation")),
        workloads=WORKLOADS,
        name="test",
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestPolicySpec:
    def test_make_sorts_kwargs(self):
        spec = PolicySpec.make("rotation", stride=2, pattern="raster")
        assert spec.kwargs == (("pattern", "raster"), ("stride", 2))
        assert spec.as_kwargs() == {"pattern": "raster", "stride": 2}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            PolicySpec.make("oracle")

    def test_seedable_flag(self):
        assert PolicySpec.make("random").seedable
        assert not PolicySpec.make("baseline").seedable

    def test_label(self):
        assert PolicySpec.make("baseline").label == "baseline"
        assert (
            PolicySpec.make("random", seed=3).label == "random(seed=3)"
        )

    def test_plan_granularity_reflects_policy_class(self):
        assert PolicySpec.make("rotation").plan_granularity == "schedule"
        assert PolicySpec.make("static_remap").plan_granularity == "epoch"
        assert PolicySpec.make("stress_aware").plan_granularity == "interval"


class TestCampaignSpec:
    def test_design_point_product(self):
        points = small_spec().design_points()
        assert len(points) == 4  # 2 geometries x 2 policies
        assert [(p.rows, p.cols, p.policy.name) for p in points] == [
            (2, 8, "baseline"),
            (2, 8, "rotation"),
            (2, 16, "baseline"),
            (2, 16, "rotation"),
        ]
        assert len({p.key for p in points}) == 4

    def test_empty_workloads_resolve_to_full_suite(self):
        spec = small_spec(workloads=())
        assert spec.resolved_workloads() == workload_names()

    def test_seed_expansion_only_for_seedable(self):
        spec = small_spec(
            geometries=((2, 8),),
            policies=(
                PolicySpec.make("baseline"),
                PolicySpec.make("random"),
            ),
            seeds=(1, 2, 3),
        )
        expanded = spec.expanded_policies()
        labels = [policy.label for policy in expanded]
        assert labels == [
            "baseline",
            "random(seed=1)",
            "random(seed=2)",
            "random(seed=3)",
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(geometries=(), policies=(PolicySpec.make("baseline"),))
        with pytest.raises(ConfigurationError):
            CampaignSpec(geometries=((2, 8),), policies=())
        with pytest.raises(ConfigurationError):
            CampaignSpec(
                geometries=((0, 8),), policies=(PolicySpec.make("baseline"),)
            )

    def test_duplicate_design_points_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate design point"):
            small_spec(geometries=((2, 8), (2, 8))).design_points()
        with pytest.raises(ConfigurationError, match="duplicate design point"):
            small_spec(
                geometries=((2, 8),),
                policies=(PolicySpec.make("random"),),
                seeds=(1, 1),
            ).design_points()

    def test_json_round_trip(self):
        spec = small_spec(seeds=(4, 5))
        clone = CampaignSpec.from_jsonable(
            json.loads(json.dumps(spec.to_jsonable()))
        )
        assert clone == spec


class TestRunner:
    @pytest.fixture(scope="class")
    def campaign_result(self):
        traces = {name: run_workload(name) for name in WORKLOADS}
        return CampaignRunner().run(small_spec(), traces=traces)

    def test_all_points_evaluated(self, campaign_result):
        assert len(campaign_result.runs) == 4
        for point, run in campaign_result:
            assert isinstance(run, SuiteRun)
            assert set(run.results) == set(WORKLOADS)
            assert run.utilization().shape == (point.rows, point.cols)

    def test_rotation_flattens_stress(self, campaign_result):
        by_label = {
            point.label: run for point, run in campaign_result.runs.items()
        }
        baseline = by_label["L8xW2/baseline"]
        rotation = by_label["L8xW2/rotation"]
        assert rotation.max_utilization() < baseline.max_utilization()

    def test_only_run_requires_single_point(self, campaign_result):
        with pytest.raises(ConfigurationError):
            campaign_result.only_run()

    def test_artifacts_written(self, tmp_path):
        traces = {name: run_workload(name) for name in WORKLOADS}
        spec = small_spec(geometries=((2, 8),))
        CampaignRunner(artifact_dir=tmp_path).run(spec, traces=traces)
        manifest = json.loads((tmp_path / "campaign.json").read_text())
        assert manifest["spec"]["name"] == "test"
        assert len(manifest["design_points"]) == 2
        for key in manifest["design_points"]:
            payload = json.loads((tmp_path / f"{key}.json").read_text())
            assert payload["geomean_speedup"] > 0
            assert np.asarray(payload["utilization"]).shape == (2, 8)
            assert set(payload["per_workload"]) == set(WORKLOADS)

    def test_process_pool_matches_serial(self):
        spec = small_spec(
            workloads=("bitcount",),
            policies=(PolicySpec.make("rotation"),),
        )
        serial = CampaignRunner().run(spec)
        pooled = CampaignRunner(max_workers=2).run(spec)
        for point in spec.design_points():
            np.testing.assert_array_equal(
                serial.runs[point].utilization(),
                pooled.runs[point].utilization(),
            )
            assert serial.runs[point].geomean_speedup() == pytest.approx(
                pooled.runs[point].geomean_speedup()
            )

    def test_evaluate_design_point_matches_runner(self):
        spec = small_spec(geometries=((2, 8),), policies=(PolicySpec.make("baseline"),))
        (point,) = spec.design_points()
        direct = evaluate_design_point(point)
        via_runner = CampaignRunner().run(spec).only_run()
        np.testing.assert_array_equal(
            direct.utilization(), via_runner.utilization()
        )


class TestScheduleCacheDir:
    """CampaignRunner(schedule_cache_dir=...): cross-process schedule
    reuse through the on-disk pickle cache, bit-identical either way."""

    def _spec(self):
        return small_spec(
            geometries=((2, 8),),
            workloads=("bitcount",),
            policies=(
                PolicySpec.make("baseline"),
                PolicySpec.make("stress_aware", interval=3),
            ),
        )

    def test_cache_populated_and_bit_identical(self, tmp_path):
        from repro.system import clear_schedule_caches

        spec = self._spec()
        clear_schedule_caches()
        cold = CampaignRunner(schedule_cache_dir=tmp_path).run(spec)
        cache_files = list(tmp_path.glob("*.pkl"))
        assert len(cache_files) == 1  # one pipeline, one workload
        clear_schedule_caches()
        warm = CampaignRunner(schedule_cache_dir=tmp_path).run(spec)
        uncached = CampaignRunner().run(spec)
        for point in spec.design_points():
            for name in cold.runs[point].results:
                for other in (warm, uncached):
                    a = cold.runs[point].results[name]
                    b = other.runs[point].results[name]
                    assert a.transrec_cycles == b.transrec_cycles
                    np.testing.assert_array_equal(
                        a.tracker.execution_counts,
                        b.tracker.execution_counts,
                    )

    def test_pool_workers_share_disk_cache(self, tmp_path):
        from repro.system import clear_schedule_caches

        spec = self._spec()
        serial = CampaignRunner().run(spec)
        # Drop the in-memory memo before forking, or the workers
        # inherit the serial run's walks and never touch the disk.
        clear_schedule_caches()
        pooled = CampaignRunner(
            max_workers=2, schedule_cache_dir=tmp_path
        ).run(spec)
        assert list(tmp_path.glob("*.pkl"))  # workers wrote the walks
        for point in spec.design_points():
            for name in serial.runs[point].results:
                np.testing.assert_array_equal(
                    serial.runs[point].results[name].tracker.execution_counts,
                    pooled.runs[point].results[name].tracker.execution_counts,
                )

    def test_runner_does_not_leak_cache_setting(self, tmp_path):
        from repro.system import schedule_cache_dir

        CampaignRunner(schedule_cache_dir=tmp_path).run(self._spec())
        assert schedule_cache_dir() is None

    def test_granularity_weighted_balancing_covers_all_points(self):
        spec = small_spec(
            geometries=((2, 8),),
            workloads=("bitcount",),
            policies=(
                PolicySpec.make("baseline"),
                PolicySpec.make("rotation"),
                PolicySpec.make("stress_aware", interval=3),
                PolicySpec.make("static_remap"),
            ),
        )
        points = spec.design_points()
        runner = CampaignRunner()
        groups = runner._balanced_groups(
            runner.schedule_groups(points), 3, points
        )
        assert sorted(
            index for group in groups for index in group
        ) == list(range(len(points)))
        assert len(groups) == 3

    def test_expensive_singleton_does_not_stall_balancing(self):
        """An unsplittable high-cost group (e.g. one stress-coupled
        point) must not stop cheaper multi-point groups from splitting
        to fill the pool."""
        spec = small_spec(
            geometries=((2, 8),),
            workloads=("bitcount",),
            policies=(
                PolicySpec.make("baseline"),
                PolicySpec.make("rotation"),
                PolicySpec.make("stress_aware", interval=3),
            ),
        )
        points = spec.design_points()
        # A singleton whose cost (stress_aware: 4) exceeds the
        # two-point oblivious group's (2): with max-by-cost alone the
        # singleton would be picked and the loop would stall at 2
        # payloads.
        groups = [[2], [0, 1]]
        balanced = CampaignRunner()._balanced_groups(groups, 3, points)
        assert len(balanced) == 3
        assert sorted(
            index for group in balanced for index in group
        ) == [0, 1, 2]


class TestSuiteRunGuards:
    def fake_run(self, speedups):
        results = {
            f"w{index}": SimpleNamespace(speedup=value)
            for index, value in enumerate(speedups)
        }
        return SuiteRun(
            geometry=FabricGeometry(rows=2, cols=8),
            policy="baseline",
            results=results,
        )

    def test_geomean_guards_non_positive(self):
        with pytest.raises(ConfigurationError, match="non-positive"):
            self.fake_run([2.0, 0.0]).geomean_speedup()
        with pytest.raises(ConfigurationError, match="non-positive"):
            self.fake_run([2.0, -1.0]).geomean_speedup()

    def test_geomean_guards_empty(self):
        with pytest.raises(ConfigurationError):
            self.fake_run([]).geomean_speedup()

    def test_geomean_normal_path(self):
        assert self.fake_run([2.0, 8.0]).geomean_speedup() == pytest.approx(4.0)


class TestJsonable:
    def test_numpy_and_sets(self):
        payload = to_jsonable(
            {
                "matrix": np.arange(4).reshape(2, 2),
                "scalar": np.int64(7),
                "cells": frozenset({(1, 2), (0, 1)}),
            }
        )
        assert payload["matrix"] == [[0, 1], [2, 3]]
        assert payload["scalar"] == 7
        assert payload["cells"] == [[0, 1], [1, 2]]
        json.dumps(payload)


class TestPairedSeedExpansion:
    """``seed_mode="paired"``: seed s means (policy seed s, mapper
    seed s), one design point per seed — vs the default cross
    product."""

    def _spec(self, seed_mode, seeds=(1, 2)):
        from repro.campaign import MapperSpec

        return CampaignSpec(
            geometries=((2, 8),),
            policies=(PolicySpec.make("random"),),
            mappers=(MapperSpec.make("annealing"),),
            workloads=("bitcount",),
            seeds=seeds,
            seed_mode=seed_mode,
            name="paired-test",
        )

    def test_cross_mode_is_the_cross_product(self):
        points = self._spec("cross").design_points()
        assert len(points) == 4  # 2 policy seeds x 2 mapper seeds
        combos = {
            (p.mapper.as_kwargs()["seed"], p.policy.as_kwargs()["seed"])
            for p in points
        }
        assert combos == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_paired_mode_ties_seeds(self):
        points = self._spec("paired").design_points()
        assert len(points) == 2  # one point per seed
        combos = [
            (p.mapper.as_kwargs()["seed"], p.policy.as_kwargs()["seed"])
            for p in points
        ]
        assert combos == [(1, 1), (2, 2)]

    def test_paired_mode_keeps_unseedable_components_once(self):
        from repro.campaign import MapperSpec

        spec = CampaignSpec(
            geometries=((2, 8),),
            policies=(
                PolicySpec.make("baseline"),
                PolicySpec.make("random"),
            ),
            mappers=(
                MapperSpec.make("greedy"),
                MapperSpec.make("annealing"),
            ),
            workloads=("bitcount",),
            seeds=(3, 4),
            seed_mode="paired",
        )
        points = spec.design_points()
        # baseline+greedy has no seedable component: one point, not one
        # per seed; every other combination expands per seed.
        labels = [point.label for point in points]
        assert len(points) == 7, labels
        assert (
            sum("baseline" in lab and "annealing" not in lab for lab in labels)
            == 1
        )

    def test_paired_without_seeds_equals_cross(self):
        cross = self._spec("cross", seeds=()).design_points()
        paired = self._spec("paired", seeds=()).design_points()
        assert cross == paired

    def test_unknown_seed_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="seed mode"):
            self._spec("zipped")

    def test_seed_mode_json_round_trip(self):
        spec = self._spec("paired")
        payload = spec.to_jsonable()
        assert payload["seed_mode"] == "paired"
        clone = CampaignSpec.from_jsonable(
            json.loads(json.dumps(payload))
        )
        assert clone == spec
        assert clone.design_points() == spec.design_points()
        # The default mode is not emitted: pre-paired manifests are
        # byte-identical.
        assert "seed_mode" not in self._spec("cross").to_jsonable()

    def test_paired_runner_executes_each_seed_once(self):
        traces = {"bitcount": run_workload("bitcount")}
        spec = self._spec("paired")
        result = CampaignRunner().run(spec, traces=traces)
        assert len(result.runs) == 2
        for point, run in result:
            assert point.mapper.as_kwargs()["seed"] == (
                point.policy.as_kwargs()["seed"]
            )
            assert set(run.results) == {"bitcount"}


class TestDeclaredRoutingBudgetAxis:
    """(rows, cols, ctx_lines) geometry entries flow from the spec to
    the fabric and into artifacts."""

    def test_three_tuple_geometry_design_point(self):
        spec = small_spec(geometries=((2, 8), (2, 8, 4)))
        points = spec.design_points()
        assert [(p.rows, p.cols, p.ctx_lines) for p in points[:4:2]] == [
            (2, 8, None),
            (2, 8, 4),
        ]
        # The budgeted point is a distinct key/label; the unbudgeted
        # ones keep their pre-routing names.
        assert points[0].key.startswith("L8xW2__")
        assert points[2].key.startswith("L8xW2xC4__")

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="ctx_lines"):
            small_spec(geometries=((4, 8, 2),))
        with pytest.raises(ConfigurationError, match="geometry entries"):
            small_spec(geometries=((4, 8, 8, 1),)).design_points()

    def test_budget_reaches_the_system(self):
        traces = {"bitcount": run_workload("bitcount")}
        spec = small_spec(
            geometries=((2, 16, 2),),
            policies=(PolicySpec.make("baseline"),),
            workloads=("bitcount",),
        )
        result = CampaignRunner().run(spec, traces=traces)
        run = result.only_run()
        assert run.geometry.routing_budget == 2
        # Translated units were held to the declared budget.
        assert all(
            res.cgra.peak_line_pressure <= 2
            for res in run.results.values()
        )

    def test_budget_recorded_in_artifacts(self, tmp_path):
        traces = {"bitcount": run_workload("bitcount")}
        spec = small_spec(
            geometries=((2, 16, 2),),
            policies=(PolicySpec.make("baseline"),),
            workloads=("bitcount",),
        )
        CampaignRunner(artifact_dir=tmp_path).run(spec, traces=traces)
        manifest = json.loads((tmp_path / "campaign.json").read_text())
        (key,) = manifest["design_points"]
        payload = json.loads((tmp_path / f"{key}.json").read_text())
        assert payload["ctx_lines"] == 2
        assert manifest["spec"]["geometries"] == [[2, 16, 2]]
