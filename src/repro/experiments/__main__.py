"""CLI: run experiment reproductions.

Usage::

    python -m repro.experiments            # run everything
    python -m repro.experiments fig7 table1
"""

from __future__ import annotations

import sys

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list[str]) -> int:
    names = argv or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"available: {', '.join(ALL_EXPERIMENTS)}")
        return 1
    for index, name in enumerate(names):
        if index:
            print("\n" + "=" * 72 + "\n")
        module = ALL_EXPERIMENTS[name]
        print(module.render(module.run()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
