"""Functional RV32IM simulation: sparse memory, CPU and trace capture."""

from repro.sim.cpu import CPU, ExecutionResult
from repro.sim.memory import Memory
from repro.sim.trace import Trace, TraceRecord

__all__ = ["CPU", "ExecutionResult", "Memory", "Trace", "TraceRecord"]
