"""Bring your own kernel: assembly -> trace -> DBT -> fabric.

Writes a small dot-product kernel in the library's RV32IM dialect,
executes it functionally, inspects the translation units the DBT forms
(sizes, shapes, dependence structure) and compares allocation policies
on the resulting stream — the full pipeline a new workload goes
through.

Run:  python examples/custom_kernel.py
"""

from repro import CPU, FabricGeometry, SystemParams, TransRecSystem, assemble
from repro.analysis.heatmap import render_heatmap
from repro.dbt import build_dfg, critical_path_length, build_unit
from repro.dbt.dfg import ilp_estimate

KERNEL = """
# dot product of two 64-element vectors, unrolled by two
main:
    la   t0, vec_a
    la   t1, vec_b
    li   t2, 32            # iterations (2 elements each)
    li   a0, 0
loop:
    lw   t3, 0(t0)
    lw   t4, 0(t1)
    mul  t5, t3, t4
    add  a0, a0, t5
    lw   t3, 4(t0)
    lw   t4, 4(t1)
    mul  t5, t3, t4
    add  a0, a0, t5
    addi t0, t0, 8
    addi t1, t1, 8
    addi t2, t2, -1
    bnez t2, loop
    li   a7, 93
    ecall

.data
vec_a: .word {a_words}
vec_b: .word {b_words}
"""


def main():
    a = [i % 23 + 1 for i in range(64)]
    b = [(3 * i) % 17 + 1 for i in range(64)]
    source = KERNEL.format(
        a_words=", ".join(map(str, a)),
        b_words=", ".join(map(str, b)),
    )
    program = assemble(source, name="dotproduct")
    result = CPU(program).run()
    expected = sum(x * y for x, y in zip(a, b))
    print(f"functional result: {result.exit_code} (expected {expected})")
    assert result.exit_code == expected
    trace = result.trace
    print(f"dynamic instructions: {len(trace)}\n")

    geometry = FabricGeometry(rows=2, cols=16)  # the BE fabric
    unit = build_unit(trace, 0, geometry)
    print("first translation unit the DBT forms:")
    print(f"  instructions: {unit.n_instructions}, fabric ops: {unit.n_ops}")
    print(f"  shape: {unit.used_rows} rows x {unit.used_cols} columns")
    print(f"  speculated branches: {unit.n_branches}")
    window = [trace[i] for i in range(unit.n_instructions)]
    graph = build_dfg(window)
    print(f"  dependence critical path: {critical_path_length(graph)} ops")
    print(f"  window ILP estimate: {ilp_estimate(graph):.2f}\n")

    for policy in ("baseline", "rotation", "stress_aware"):
        system = TransRecSystem(
            SystemParams(geometry=geometry, policy=policy)
        )
        run = system.run_trace(trace)
        print(
            f"{policy:13s} speedup {run.speedup:4.2f}x   "
            f"worst util {run.tracker.max_utilization() * 100:5.1f}%   "
            f"mean util {run.tracker.mean_utilization() * 100:5.1f}%"
        )
    system = TransRecSystem(SystemParams(geometry=geometry, policy="rotation"))
    run = system.run_trace(trace)
    print()
    print(render_heatmap(run.tracker.utilization(),
                         title="rotation policy utilization map"))


if __name__ == "__main__":
    main()
