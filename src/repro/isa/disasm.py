"""Textual disassembly of symbolic instructions (for logs and tests)."""

from __future__ import annotations

from repro.isa.instructions import Instruction, OperandFormat
from repro.isa.program import Program
from repro.isa.registers import register_name


def format_instruction(ins: Instruction, pc: int | None = None) -> str:
    """Render one instruction as assembly text.

    Branch/jal targets are shown as absolute addresses when ``pc`` is
    given, otherwise as relative offsets (``pc+8`` style is avoided so
    output remains re-assemblable when labels are present).
    """
    fmt = ins.spec.fmt
    reg = register_name
    if fmt is OperandFormat.R:
        return f"{ins.op} {reg(ins.rd)}, {reg(ins.rs1)}, {reg(ins.rs2)}"
    if fmt is OperandFormat.I:
        return f"{ins.op} {reg(ins.rd)}, {reg(ins.rs1)}, {ins.imm}"
    if fmt is OperandFormat.LOAD:
        return f"{ins.op} {reg(ins.rd)}, {ins.imm}({reg(ins.rs1)})"
    if fmt is OperandFormat.STORE:
        return f"{ins.op} {reg(ins.rs2)}, {ins.imm}({reg(ins.rs1)})"
    if fmt is OperandFormat.BRANCH:
        target = ins.label or _target_text(ins, pc)
        return f"{ins.op} {reg(ins.rs1)}, {reg(ins.rs2)}, {target}"
    if fmt is OperandFormat.U:
        return f"{ins.op} {reg(ins.rd)}, {ins.imm:#x}"
    if fmt is OperandFormat.J:
        target = ins.label or _target_text(ins, pc)
        return f"{ins.op} {reg(ins.rd)}, {target}"
    if fmt is OperandFormat.JR:
        return f"{ins.op} {reg(ins.rd)}, {reg(ins.rs1)}, {ins.imm}"
    return ins.op


def _target_text(ins: Instruction, pc: int | None) -> str:
    if pc is None:
        return f".{ins.imm:+d}"
    return f"{pc + ins.imm:#x}"


def disassemble(program: Program) -> str:
    """Render a whole program, one ``address: instruction`` line each."""
    address_labels = {addr: name for name, addr in program.symbols.items()}
    lines = []
    for index, ins in enumerate(program.instructions):
        pc = program.pc_of(index)
        label = address_labels.get(pc)
        if label:
            lines.append(f"{label}:")
        lines.append(f"  {pc:#08x}: {format_instruction(ins, pc)}")
    return "\n".join(lines)
