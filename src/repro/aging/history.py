"""Epoch-based stress accounting for time-varying utilization.

Eq. 1 assumes a constant duty cycle. Real systems change workloads, so
we track stress as accumulated *effective stress time* ``sum(u_i *
dt_i)``: under the model's ``(t * u)^(1/6)`` form, a varying-duty
history is equivalent to running at u = 1 for the accumulated stress
time. This keeps the closed form exact while letting the adaptive
policy reason about epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aging.nbti import NBTIModel


@dataclass
class StressHistory:
    """Accumulates (duration, utilization) epochs for one FU."""

    epochs: list[tuple[float, float]] = field(default_factory=list)

    def add_epoch(self, years: float, utilization: float) -> None:
        """Append an epoch of ``years`` at duty cycle ``utilization``."""
        if years < 0:
            raise ValueError("epoch duration must be non-negative")
        if not 0 <= utilization <= 1:
            raise ValueError("utilization must be in [0, 1]")
        self.epochs.append((years, utilization))

    @property
    def elapsed_years(self) -> float:
        """Total wall-clock time covered by the history."""
        return sum(duration for duration, _ in self.epochs)

    @property
    def effective_stress_years(self) -> float:
        """Equivalent years at full stress (``sum(u_i * dt_i)``)."""
        return sum(duration * util for duration, util in self.epochs)

    def equivalent_utilization(self) -> float:
        """Average duty cycle over the elapsed time."""
        elapsed = self.elapsed_years
        if elapsed == 0.0:
            return 0.0
        return self.effective_stress_years / elapsed

    def delta_vt(self, model: NBTIModel) -> float:
        """Vt shift accumulated by this history under ``model``."""
        return model.delta_vt(self.effective_stress_years, 1.0)

    def delay_increase(self, model: NBTIModel) -> float:
        """Relative delay increase accumulated by this history."""
        return model.delay_increase(self.effective_stress_years, 1.0)

    def remaining_years(
        self,
        model: NBTIModel,
        future_utilization: float,
        threshold: float | None = None,
    ) -> float:
        """Years of further operation at ``future_utilization`` until the
        delay threshold is crossed."""
        if threshold is None:
            threshold = model.reference_degradation
        budget_stress_years = model.years_to_degradation(1.0, threshold)
        remaining_stress = budget_stress_years - self.effective_stress_years
        if remaining_stress <= 0.0:
            return 0.0
        if future_utilization == 0.0:
            return float("inf")
        return remaining_stress / future_utilization
