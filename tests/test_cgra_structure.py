"""Tests for the interconnect and reconfiguration-logic structural models."""

from repro.cgra.fabric import FabricGeometry
from repro.cgra.interconnect import InterconnectSpec, _select_bits
from repro.cgra.reconfig import ReconfigLogicSpec


class TestSelectBits:
    def test_powers_of_two(self):
        assert _select_bits(2) == 1
        assert _select_bits(4) == 2
        assert _select_bits(8) == 3

    def test_non_powers(self):
        assert _select_bits(3) == 2
        assert _select_bits(5) == 3

    def test_degenerate(self):
        assert _select_bits(1) == 1


class TestInterconnect:
    def test_counts_for_be_geometry(self):
        spec = InterconnectSpec(FabricGeometry(rows=2, cols=16))
        assert spec.input_muxes_per_column == 4      # 2 FUs x 2 operands
        assert spec.input_mux_inputs == 4            # ctx lines
        assert spec.output_muxes_per_column == 4     # one per ctx line
        assert spec.output_mux_inputs == 3           # keep + 2 rows
        assert spec.wrap_muxes_per_column == 4
        assert spec.wrap_mux_inputs == 2

    def test_select_bit_totals(self):
        spec = InterconnectSpec(FabricGeometry(rows=2, cols=16))
        assert spec.input_select_bits() == 4 * 2
        assert spec.output_select_bits() == 4 * 2

    def test_scaling_with_rows(self):
        small = InterconnectSpec(FabricGeometry(rows=2, cols=16))
        large = InterconnectSpec(FabricGeometry(rows=8, cols=16))
        assert large.input_muxes_per_column > small.input_muxes_per_column
        assert large.output_mux_inputs > small.output_mux_inputs


class TestReconfigLogic:
    def test_config_bits_positive_and_scale(self):
        small = ReconfigLogicSpec(FabricGeometry(rows=2, cols=8))
        large = ReconfigLogicSpec(FabricGeometry(rows=8, cols=32))
        assert small.config_bits_per_column > 0
        assert large.config_bits_per_column > small.config_bits_per_column
        assert large.total_config_bits > small.total_config_bits

    def test_total_is_per_column_times_cols(self):
        spec = ReconfigLogicSpec(FabricGeometry(rows=2, cols=16))
        assert spec.total_config_bits == 16 * spec.config_bits_per_column

    def test_barrel_rotator_stages(self):
        assert ReconfigLogicSpec(
            FabricGeometry(rows=2, cols=8)
        ).barrel_rotator_stages == 1
        assert ReconfigLogicSpec(
            FabricGeometry(rows=4, cols=8)
        ).barrel_rotator_stages == 2
        assert ReconfigLogicSpec(
            FabricGeometry(rows=8, cols=8)
        ).barrel_rotator_stages == 3

    def test_line_mux_matches_config_lines(self):
        geometry = FabricGeometry(rows=2, cols=16, n_config_lines=4)
        assert ReconfigLogicSpec(geometry).line_mux_inputs == 4

    def test_rotated_bits_subset_of_column_bits(self):
        spec = ReconfigLogicSpec(FabricGeometry(rows=4, cols=16))
        assert spec.rotated_bits_per_column() <= spec.config_bits_per_column
