"""Compiled kernel backend for the measured hot loops.

``repro.kernels`` hosts a backend-dispatch layer
(:mod:`repro.kernels.backend`) and compiled ports of the three
measured hot kernels:

* :mod:`repro.kernels.stress_plan` — the stress-aware segment-plan
  inner loop: pattern-footprint pivot search, snake fill, and the
  allocator's deferred span-fold stress flush;
* :mod:`repro.kernels.sa_moves` — the SA move/cost kernel of the
  annealing mapper;
* :mod:`repro.kernels.pressure` — per-column line-pressure interval
  folding and the fused routing profile.

The numpy reference path is always available and is the bit-identical
semantics oracle; numba is an optional soft dependency selected via
the ``REPRO_KERNEL_BACKEND`` environment variable or
:func:`set_backend`, JIT-compiled lazily, with graceful fallback when
it is absent or compilation fails.
"""

from repro.kernels.backend import (
    BACKEND_REQUESTS,
    BACKENDS,
    KERNEL_BACKEND_ENV,
    BackendInfo,
    active_backend,
    backend_info,
    numba_available,
    set_backend,
    use_backend,
)

__all__ = [
    "BACKEND_REQUESTS",
    "BACKENDS",
    "KERNEL_BACKEND_ENV",
    "BackendInfo",
    "active_backend",
    "backend_info",
    "numba_available",
    "set_backend",
    "use_backend",
]
