"""Policy ablation + writing a custom sequence-planning policy.

Part 1 compares the shipped allocation policies (plus rotation pattern
variants) on the largest scenario, where the utilization budget is
biggest. This covers the paper's future-work direction — using
run-time aging information (the stress-aware policy) — and shows why
the cheap hardware rotation is already close to the balancing optimum.

Part 2 shows how to write a *custom* policy against the
sequence-planning API (`repro.core.policy.AllocationPolicy`): the
policy consumes a view of the whole launch schedule and yields
`SegmentPlan`s — contiguous launch ranges with precomputed pivots —
re-reading the stress tracker only at the segment boundaries where it
actually adapts. A legacy variant of the same policy, written against
the old per-launch ``next_pivot`` API, still runs unchanged through
the allocator's `LegacyPolicyAdapter` fallback (with a one-time
DeprecationWarning) and produces bit-identical stress.

Run:  python examples/adaptive_policy.py
"""

import warnings

import numpy as np

from repro import NBTIModel, lifetime_improvement
from repro.analysis.distribution import gini, summary_statistics
from repro.analysis.tables import render_table
from repro.cgra.fabric import FabricGeometry
from repro.core.policy import (
    AllocationPolicy,
    SegmentPlan,
    candidate_footprints,
)
from repro.core.utilization import Weighting
from repro.experiments.common import run_suite
from repro.system import SystemParams, replay_schedule, shared_schedule
from repro.workloads.suite import run_workload

ROWS, COLS = 8, 32  # the BU fabric

POLICIES = (
    ("baseline", {}),
    ("static_remap", {}),   # related work [19]: health-aware, frozen
    ("rotation", {"pattern": "snake"}),
    ("rotation", {"pattern": "raster"}),
    ("rotation", {"pattern": "column_snake"}),
    ("rotation", {"pattern": "diagonal"}),
    ("random", {"seed": 1}),
    ("stress_aware", {"interval": 16}),
)


def label_of(policy, kwargs):
    if policy == "rotation":
        return f"rotation/{kwargs['pattern']}"
    return policy


# ----------------------------------------------------------------------
# Part 2: a custom policy on the sequence-planning API.
#
# "Coolest-corner epochs": every ``epoch`` launches the controller
# reads the accumulated stress and re-anchors the pivot at the
# candidate whose footprint has the lowest *total* stress (a simpler
# duty cycle than stress_aware's min-max search); between re-anchors
# the pivot holds still. One segment per epoch is all the planner
# needs — the fill inside an epoch is a constant tile.


class CoolestCornerPolicy(AllocationPolicy):
    """Re-anchor at the minimum-total-stress pivot every ``epoch``
    launches (sequence-planning protocol)."""

    name = "coolest_corner"
    plan_granularity = "interval"

    def __init__(self, epoch: int = 64) -> None:
        self.epoch = epoch
        self._launches = 0
        self._pivot = (0, 0)

    def bind(self, geometry: FabricGeometry) -> None:
        super().bind(geometry)
        self._launches = 0
        self._pivot = (0, 0)
        self._candidates = np.asarray(
            [
                (row, col)
                for row in range(geometry.rows)
                for col in range(geometry.cols)
            ],
            dtype=np.int64,
        )

    def _re_anchor_on(self, config, flat_counts) -> tuple[int, int]:
        footprints = candidate_footprints(
            config, self._candidates, self.geometry
        )
        totals = flat_counts[footprints].sum(axis=1)
        best = int(np.argmin(totals))  # first minimum wins: deterministic
        return (int(self._candidates[best, 0]), int(self._candidates[best, 1]))

    def _re_anchor(self, config, tracker) -> tuple[int, int]:
        return self._re_anchor_on(
            config, tracker.execution_counts.reshape(-1)
        )

    def next_pivot(self, config, tracker) -> tuple[int, int]:
        if self._launches % self.epoch == 0:
            self._pivot = self._re_anchor(config, tracker)
        self._launches += 1
        return self._pivot

    def plan_segments(self, schedule, tracker):
        n_launches = schedule.n_launches
        configs = schedule.configs
        index = 0
        while index < n_launches:
            if self._launches % self.epoch == 0:
                # Reading the tracker here observes every launch of the
                # segments yielded so far — the allocator flushes its
                # deferred stress before the read.
                self._pivot = self._re_anchor(configs[index], tracker)
            count = min(
                self.epoch - self._launches % self.epoch, n_launches - index
            )
            self._launches += count
            pivots = np.tile(
                np.asarray(self._pivot, dtype=np.int64), (count, 1)
            )
            yield SegmentPlan(start=index, stop=index + count, pivots=pivots)
            index += count

    def describe(self) -> str:
        return f"coolest_corner(epoch={self.epoch})"


class LegacyCoolestCornerPolicy(AllocationPolicy):
    """The same policy written against the pre-segment per-launch API —
    runs through ``LegacyPolicyAdapter``, bit-identically.

    Note what the old API demanded: because the policy reads the
    tracker, its ``next_pivots`` batch hook must model the stress its
    *own* pending launches accrue (the adapter hands it a whole run at
    a time, and a re-anchor landing mid-run would otherwise read stale
    counters). ``plan_segments`` moves that burden into the engine —
    the allocator flushes before every tracker read — which is the
    point of migrating.
    """

    name = "coolest_corner_legacy"

    def __init__(self, epoch: int = 64) -> None:
        self.epoch = epoch
        self._launches = 0
        self._pivot = (0, 0)

    def bind(self, geometry: FabricGeometry) -> None:
        super().bind(geometry)
        self._launches = 0
        self._pivot = (0, 0)
        self._candidates = np.asarray(
            [
                (row, col)
                for row in range(geometry.rows)
                for col in range(geometry.cols)
            ],
            dtype=np.int64,
        )

    _re_anchor_on = CoolestCornerPolicy._re_anchor_on
    _re_anchor = CoolestCornerPolicy._re_anchor

    def _flat_footprint(self, config, pivot) -> np.ndarray:
        return candidate_footprints(
            config, np.asarray([pivot], dtype=np.int64), self.geometry
        )[0]

    def next_pivot(self, config, tracker) -> tuple[int, int]:
        if self._launches % self.epoch == 0:
            self._pivot = self._re_anchor(config, tracker)
        self._launches += 1
        return self._pivot

    def next_pivots(self, config, tracker, count: int) -> np.ndarray:
        """Batch-exact under the old API: replays the run's own stress
        accrual on a working copy of the counters, so a mid-run
        re-anchor sees exactly the state the scalar loop would."""
        pivots = np.empty((count, 2), dtype=np.int64)
        counts = None
        pending = 0  # launches at the current pivot before any read
        for index in range(count):
            if self._launches % self.epoch == 0:
                if counts is None:
                    counts = np.array(
                        tracker.execution_counts, dtype=np.int64
                    ).reshape(-1)
                    if pending:
                        counts[
                            self._flat_footprint(config, self._pivot)
                        ] += pending
                        pending = 0
                self._pivot = self._re_anchor_on(config, counts)
            pivots[index] = self._pivot
            if counts is None:
                pending += 1
            else:
                counts[self._flat_footprint(config, self._pivot)] += 1
            self._launches += 1
        return pivots

    def describe(self) -> str:
        return f"coolest_corner_legacy(epoch={self.epoch})"


def demo_custom_policy(rows: int = 4, cols: int = 16):
    """Replay one recorded schedule under both variants; returns the
    two trackers (identical) and the deprecation warnings raised."""
    geometry = FabricGeometry(rows=rows, cols=cols)
    params = SystemParams(geometry=geometry)
    schedule = shared_schedule(params, run_workload("bitcount"))
    modern = replay_schedule(schedule, geometry, CoolestCornerPolicy())
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = replay_schedule(
            schedule, geometry, LegacyCoolestCornerPolicy()
        )
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    return modern.tracker, legacy.tracker, deprecations


def main():
    model = NBTIModel()
    baseline_worst = None
    rows = []
    for policy, kwargs in POLICIES:
        run = run_suite(ROWS, COLS, policy=policy, **kwargs)
        util = run.utilization(Weighting.EXECUTIONS)
        stats = summary_statistics(util.ravel())
        if policy == "baseline":
            baseline_worst = stats["max"]
        improvement = lifetime_improvement(
            model, baseline_worst, stats["max"]
        )
        rows.append(
            (
                label_of(policy, kwargs),
                f"{run.geomean_speedup():.2f}x",
                f"{stats['max'] * 100:5.1f}%",
                f"{stats['mean'] * 100:5.1f}%",
                f"{gini(util.ravel()):.3f}",
                f"{improvement:.2f}x",
            )
        )
    print(
        render_table(
            ("policy", "speedup", "worst util", "mean util",
             "gini", "lifetime vs baseline"),
            rows,
            title=f"Allocation-policy ablation on the BU fabric "
                  f"({COLS}x{ROWS}, full suite)",
        )
    )
    print(
        "\nReading the table: every balancing policy pushes the worst-"
        "case utilization toward the fabric mean (gini -> 0). The "
        "paper's snake rotation gets there with a counter and a few "
        "muxes; the stress-aware variant (future work in the paper) "
        "buys only a little more balance for a pivot search."
    )

    modern, legacy, deprecations = demo_custom_policy()
    identical = bool(
        np.array_equal(modern.execution_counts, legacy.execution_counts)
    )
    print(
        "\nCustom sequence-planning policy (coolest_corner): replayed "
        f"{modern.total_executions} launches in "
        f"{np.count_nonzero(modern.execution_counts)} stressed cells; "
        f"legacy per-launch variant identical: {identical} "
        f"(adapter DeprecationWarnings: {len(deprecations)})"
    )


if __name__ == "__main__":
    main()
