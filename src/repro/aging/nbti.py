"""Long-term NBTI threshold-voltage shift model (paper Eq. 1).

``delta_vt`` implements Eq. 1 directly. Delay degradation is modelled
to first order as proportional to the Vt increase; the proportionality
constant is fixed by a calibration point rather than device parameters,
following the paper's methodology ("a worst-case delay degradation of
10% over 3 years was considered as estimated in the literature").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

HOURS_PER_YEAR = 24.0 * 365.0

#: Eq. 1 constants.
_PREFACTOR = 0.005
_TEMP_CONSTANT = 1500.0
_TIME_EXPONENT = 1.0 / 6.0
_UTIL_EXPONENT = 1.0 / 6.0


@dataclass(frozen=True)
class NBTIModel:
    """Eq. 1 with a delay-degradation calibration point.

    Attributes:
        temperature_k: operating temperature ``T`` in kelvin.
        vdd: operating voltage in volts.
        reference_years: calibration time (paper: 3 years).
        reference_degradation: relative delay increase at the
            calibration point (paper: 0.10).
        reference_utilization: duty cycle of the calibration point
            (paper: worst case, 1.0).
    """

    temperature_k: float = 350.0
    vdd: float = 0.8
    reference_years: float = 3.0
    reference_degradation: float = 0.10
    reference_utilization: float = 1.0
    _delay_scale: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        if self.temperature_k <= 0:
            raise ConfigurationError("temperature must be positive")
        if self.vdd <= 0:
            raise ConfigurationError("vdd must be positive")
        if not 0 < self.reference_utilization <= 1:
            raise ConfigurationError("reference utilization must be in (0, 1]")
        if self.reference_years <= 0 or self.reference_degradation <= 0:
            raise ConfigurationError("calibration point must be positive")
        reference_dvt = self.delta_vt(
            self.reference_years, self.reference_utilization
        )
        object.__setattr__(
            self, "_delay_scale", self.reference_degradation / reference_dvt
        )

    def delta_vt(self, years: float, utilization: float) -> float:
        """Threshold-voltage increase (volts) after ``years`` at duty
        cycle ``utilization`` — Eq. 1 with ``t`` in hours."""
        if years < 0:
            raise ValueError("time must be non-negative")
        if not 0 <= utilization <= 1:
            raise ValueError("utilization must be in [0, 1]")
        hours = years * HOURS_PER_YEAR
        return (
            _PREFACTOR
            * math.exp(-_TEMP_CONSTANT / self.temperature_k)
            * self.vdd**4
            * hours**_TIME_EXPONENT
            * utilization**_UTIL_EXPONENT
        )

    def delay_increase(self, years: float, utilization: float) -> float:
        """Relative delay increase (e.g. 0.10 = +10%) after ``years``."""
        return self._delay_scale * self.delta_vt(years, utilization)

    def years_to_degradation(
        self, utilization: float, threshold: float | None = None
    ) -> float:
        """Invert :meth:`delay_increase`: years until ``threshold``.

        With both exponents at 1/6 the closed form is::

            t = reference_years
                * (threshold / reference_degradation)^6
                * (reference_utilization / utilization)

        Returns ``inf`` for a never-stressed FU (utilization 0).
        """
        if threshold is None:
            threshold = self.reference_degradation
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if not 0 <= utilization <= 1:
            raise ValueError("utilization must be in [0, 1]")
        if utilization == 0.0:
            return math.inf
        exponent = 1.0 / _TIME_EXPONENT
        return (
            self.reference_years
            * (threshold / self.reference_degradation) ** exponent
            * (self.reference_utilization / utilization)
            ** (_UTIL_EXPONENT * exponent)
        )
