"""Hardware Dynamic Binary Translation (DBT) model.

TransRec's DBT watches the committed instruction stream, groups
instructions into translation units, allocates them onto the CGRA's
virtual grid with a greedy first-fit scheduler (the energy-oriented
allocation whose corner bias motivates the paper) and stores the
resulting configurations in a PC-indexed configuration cache.
"""

from repro.dbt.config_cache import ConfigCache, ConfigCacheStats
from repro.dbt.dfg import build_dfg, critical_path_length
from repro.dbt.scheduler import GreedyScheduler, SchedulerState
from repro.dbt.translator import DBTEngine, DBTLimits
from repro.dbt.window import build_unit

__all__ = [
    "ConfigCache",
    "ConfigCacheStats",
    "DBTEngine",
    "DBTLimits",
    "GreedyScheduler",
    "SchedulerState",
    "build_dfg",
    "build_unit",
    "critical_path_length",
]
