"""Benchmark: regenerate Fig. 1 (motivational utilization heatmap).

Checks the corner bias the paper motivates with: the top-left FU is
used by (nearly) all configurations, the bottom-right by almost none,
and utilization decays monotonically away from the top-left corner.
"""

from repro.experiments import fig1


def test_fig1(benchmark):
    result = benchmark.pedantic(fig1.run, rounds=1, iterations=1)
    print("\n" + fig1.render(result))

    util = result.utilization
    # Top-left FU is the hottest, used by ~all configurations.
    assert result.top_left >= 0.95
    # Bottom-right is (nearly) never used, as in the paper's 1%.
    assert result.bottom_right <= 0.05
    # Rows get monotonically less stressed bottom-to-top (row 0 = paper
    # row 1), columns left-to-right.
    row_means = util.mean(axis=1)
    assert all(a >= b for a, b in zip(row_means, row_means[1:]))
    col_means = util.mean(axis=0)
    assert col_means[0] > 2 * col_means[-1]
