"""Fabric-geometry sweep driver.

Reproduces the exploration of Section IV-B: length (columns) from 8 to
32 and width (rows) from 2 to 8, reporting execution time, energy and
average FU utilization relative to the stand-alone GPP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cgra.fabric import FabricGeometry
from repro.sim.trace import Trace
from repro.system.params import SystemParams
from repro.system.transrec import TransRecSystem

#: The paper's sweep values.
DEFAULT_LENGTHS = (8, 16, 24, 32)
DEFAULT_WIDTHS = (2, 4, 8)


@dataclass(frozen=True)
class DSEPoint:
    """Aggregate suite metrics for one geometry.

    Ratios are TransRec relative to the stand-alone GPP; utilization is
    execution-weighted and averaged over all FUs (the paper's
    "occupation").
    """

    cols: int
    rows: int
    exec_time_ratio: float
    energy_ratio: float
    avg_utilization: float
    worst_utilization: float
    speedup: float

    @property
    def label(self) -> str:
        return f"(L{self.cols}, W{self.rows})"


def run_design_point(
    traces: dict[str, Trace],
    cols: int,
    rows: int,
    policy: str = "baseline",
    base_params: SystemParams | None = None,
    **policy_kwargs,
) -> DSEPoint:
    """Evaluate one geometry over a set of workload traces.

    Execution-time and energy ratios are geometric means across the
    suite; utilization aggregates launch counts over all workloads
    (the fabric ages across the whole mix, not per benchmark).
    """
    geometry = FabricGeometry(rows=rows, cols=cols)
    if base_params is None:
        params = SystemParams(
            geometry=geometry, policy=policy, policy_kwargs=policy_kwargs
        )
    else:
        params = SystemParams(
            geometry=geometry,
            policy=policy,
            policy_kwargs=policy_kwargs,
            gpp=base_params.gpp,
            datapath=base_params.datapath,
            dbt=base_params.dbt,
            config_cache_entries=base_params.config_cache_entries,
            energy=base_params.energy,
        )
    system = TransRecSystem(params)
    time_ratios = []
    energy_ratios = []
    counts = np.zeros((rows, cols), dtype=np.int64)
    total_launches = 0
    for trace in traces.values():
        result = system.run_trace(trace)
        time_ratios.append(result.exec_time_ratio)
        energy_ratios.append(result.energy_ratio)
        counts += result.tracker.execution_counts
        total_launches += result.tracker.total_executions
    utilization = counts / max(1, total_launches)
    exec_ratio = float(np.exp(np.mean(np.log(time_ratios))))
    energy_ratio = float(np.exp(np.mean(np.log(energy_ratios))))
    return DSEPoint(
        cols=cols,
        rows=rows,
        exec_time_ratio=exec_ratio,
        energy_ratio=energy_ratio,
        avg_utilization=float(utilization.mean()),
        worst_utilization=float(utilization.max()),
        speedup=1.0 / exec_ratio,
    )


def sweep(
    traces: dict[str, Trace],
    lengths: tuple[int, ...] = DEFAULT_LENGTHS,
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    policy: str = "baseline",
) -> list[DSEPoint]:
    """Evaluate every (L, W) combination; raster order over L then W."""
    return [
        run_design_point(traces, cols=length, rows=width, policy=policy)
        for length in lengths
        for width in widths
    ]
