"""Fault-tolerant process-pool execution with requeue and degradation.

:class:`ResilientExecutor` runs a list of picklable task payloads
through one worker function and keeps going where a bare
``ProcessPoolExecutor`` would abort the whole campaign:

* **Worker crashes** (OOM kill, segfault, injected ``os._exit``) break
  the pool; the executor detects the broken pool, counts every
  in-flight task as a crash attempt (the culprit is unknowable — the
  innocents succeed on requeue), rebuilds the pool and requeues.
* **Hangs** are bounded by a per-task wall-clock ``task_timeout``
  (measured from submission; submissions are capped at ``max_workers``
  in flight so a queued task's clock never runs while it waits). A
  timed-out task is charged an attempt; its pool is rebuilt — the hung
  worker cannot be reclaimed — and the other in-flight tasks requeue
  *without* an attempt charge.
* **Task exceptions** are classified by the :class:`RetryPolicy`:
  transient failures back off (deterministic seeded jitter) and
  requeue; deterministic bugs and tasks that exhausted their attempts
  are **quarantined** as structured :class:`TaskFailure` records — the
  rest of the campaign completes.
* **Repeated pool breakage** (more than ``max_pool_rebuilds``) drops
  to serial in-process execution for the remaining tasks — graceful
  degradation: slower, but the campaign finishes. Inline execution
  arms :func:`repro.resilience.faults.set_inline`, so an injected
  "crash" raises instead of killing the parent.

Because task functions are deterministic in their payloads, results
are **bit-identical** no matter how many retries, requeues or
degradations occurred — the property the campaign/fleet runners'
equivalence suites pin.

Completion order is whatever failure recovery makes it; results are
returned index-aligned with the payloads, and the optional
``on_result`` callback streams them as they land (at most once per
task — a timed-out task whose abandoned worker later finishes is
never double-delivered).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from repro import obs
from repro.errors import TaskTimeoutError, WorkerCrashError
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy

__all__ = ["ExecutionReport", "ResilientExecutor", "TaskFailure"]


@dataclass
class TaskFailure:
    """One quarantined task: what failed, how, after how many tries."""

    key: str
    kind: str  # "error" | "timeout" | "crash"
    error_type: str
    message: str
    attempts: int
    #: Runner-filled context (e.g. the design-point keys or shard
    #: indices the task covered).
    detail: dict = field(default_factory=dict)

    def to_jsonable(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "detail": dict(self.detail),
        }


@dataclass
class ExecutionReport:
    """Outcome of one :meth:`ResilientExecutor.run`.

    ``results`` is index-aligned with the submitted payloads (``None``
    where the task was quarantined — check ``failures`` for why).
    """

    results: list
    failures: list[TaskFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    degraded_serial: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures


class _Task:
    __slots__ = ("index", "key", "payload", "attempts", "not_before")

    def __init__(self, index: int, key: str, payload) -> None:
        self.index = index
        self.key = key
        self.payload = payload
        self.attempts = 0
        self.not_before = 0.0


def _run_task(bundle):
    """Worker-side trampoline: arm the shipped fault plan, publish the
    task context, walk the injection sites, run the task."""
    fn, payload, key, attempt, plan_payload = bundle
    if plan_payload is not None:
        faults.activate(faults.FaultPlan.from_jsonable(plan_payload))
    faults.set_context(key, attempt)
    try:
        faults.maybe_fire("worker.crash")
        faults.maybe_fire("worker.hang")
        faults.maybe_fire("task.error")
        return fn(payload)
    finally:
        faults.set_context(None)


class ResilientExecutor:
    """Runs deterministic tasks on a process pool, surviving worker
    loss, hangs and transient task failures.

    Args:
        fn: picklable module-level worker function of one payload.
        max_workers: pool width; ``<= 1`` runs everything inline (the
            degraded-serial path, without a pool to break).
        retry: attempt budget + backoff + classification
            (default :class:`RetryPolicy`).
        task_timeout: per-task wall-clock budget in seconds
            (``None`` = unbounded).
        max_pool_rebuilds: pool breakages tolerated before degrading
            to serial execution for the remainder.
        sleep: injectable sleep (tests pass a recorder).
    """

    def __init__(
        self,
        fn,
        max_workers: int,
        retry: RetryPolicy | None = None,
        task_timeout: float | None = None,
        max_pool_rebuilds: int = 3,
        sleep=time.sleep,
    ) -> None:
        self.fn = fn
        self.max_workers = max_workers
        self.retry = retry if retry is not None else RetryPolicy()
        self.task_timeout = task_timeout
        self.max_pool_rebuilds = max_pool_rebuilds
        self.sleep = sleep

    # ------------------------------------------------------------------

    def run(self, payloads, keys=None, on_result=None) -> ExecutionReport:
        """Execute every payload; returns the index-aligned report.

        ``keys`` names tasks for failure records, backoff determinism
        and fault-plan matching (defaults to ``task-<index>``).
        ``on_result(index, result)`` streams successes as they land.
        """
        payloads = list(payloads)
        if keys is None:
            keys = [f"task-{index}" for index in range(len(payloads))]
        else:
            keys = [str(key) for key in keys]
            if len(keys) != len(payloads):
                raise ValueError(
                    f"{len(keys)} keys for {len(payloads)} payloads"
                )
        tasks = [
            _Task(index, key, payload)
            for index, (key, payload) in enumerate(zip(keys, payloads))
        ]
        report = ExecutionReport(results=[None] * len(payloads))
        if not tasks:
            return report
        queue: deque[_Task] = deque(tasks)
        if self.max_workers <= 1:
            self._drain_inline(queue, report, on_result)
            return report
        plan = faults.active_plan()
        plan_payload = plan.to_jsonable() if plan is not None else None
        pool = ProcessPoolExecutor(max_workers=self.max_workers)
        inflight: dict = {}  # future -> (task, deadline)
        try:
            while queue or inflight:
                if report.degraded_serial:
                    break
                now = time.monotonic()
                # Submit up to max_workers ready tasks (backoff keeps a
                # requeued task out until its not_before).
                ready = len(
                    [t for t in queue if t.not_before <= now]
                )
                while ready and len(inflight) < self.max_workers:
                    task = self._pop_ready(queue, now)
                    if task is None:
                        break
                    ready -= 1
                    future = pool.submit(
                        _run_task,
                        (self.fn, task.payload, task.key, task.attempts,
                         plan_payload),
                    )
                    deadline = (
                        now + self.task_timeout
                        if self.task_timeout is not None
                        else float("inf")
                    )
                    inflight[future] = (task, deadline)
                if not inflight:
                    # Everything queued is backing off; sleep to the
                    # earliest release.
                    wake = min(task.not_before for task in queue)
                    self.sleep(max(0.0, wake - time.monotonic()))
                    continue
                next_deadline = min(dl for _, dl in inflight.values())
                wait_budget = None
                if next_deadline != float("inf"):
                    wait_budget = max(0.0, next_deadline - time.monotonic())
                done, _ = wait(
                    inflight, timeout=wait_budget, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in done:
                    task, _ = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenExecutor:
                        broken = True
                        self._task_failed(
                            task,
                            WorkerCrashError(
                                f"worker died running {task.key!r}"
                            ),
                            "crash",
                            queue,
                            report,
                        )
                    except Exception as error:
                        self._task_failed(task, error, "error", queue, report)
                    else:
                        self._deliver(task, result, report, on_result)
                if broken:
                    # The pool is unusable; every other in-flight task
                    # is charged a crash attempt too (the culprit is
                    # unknowable) and requeued.
                    for future, (task, _) in list(inflight.items()):
                        self._task_failed(
                            task,
                            WorkerCrashError(
                                f"pool broke while {task.key!r} was in flight"
                            ),
                            "crash",
                            queue,
                            report,
                        )
                    inflight.clear()
                    # A broken pool's workers are already dead: wait so
                    # its management thread unwinds cleanly (leaving it
                    # behind trips the interpreter's atexit wakeup on a
                    # closed pipe).
                    pool = self._rebuild(pool, report, wait=True)
                    continue
                now = time.monotonic()
                expired = [
                    future
                    for future, (_, deadline) in inflight.items()
                    if now >= deadline
                ]
                if expired:
                    for future in expired:
                        task, _ = inflight.pop(future)
                        report.timeouts += 1
                        obs.count("resilience.timeouts")
                        self._task_failed(
                            task,
                            TaskTimeoutError(
                                f"task {task.key!r} exceeded "
                                f"{self.task_timeout}s"
                            ),
                            "timeout",
                            queue,
                            report,
                        )
                    # The hung worker cannot be reclaimed: abandon the
                    # pool. Innocent in-flight tasks requeue without an
                    # attempt charge (their recomputation is free —
                    # tasks are deterministic).
                    for future, (task, _) in list(inflight.items()):
                        future.cancel()
                        task.not_before = 0.0
                        queue.append(task)
                    inflight.clear()
                    pool = self._rebuild(pool, report)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if report.degraded_serial and (queue or inflight):
            for future, (task, _) in list(inflight.items()):
                future.cancel()
                queue.append(task)
            inflight.clear()
            self._drain_inline(queue, report, on_result)
        return report

    # ------------------------------------------------------------------

    @staticmethod
    def _pop_ready(queue: deque, now: float) -> _Task | None:
        for _ in range(len(queue)):
            task = queue.popleft()
            if task.not_before <= now:
                return task
            queue.append(task)
        return None

    def _deliver(self, task: _Task, result, report, on_result) -> None:
        report.results[task.index] = result
        if on_result is not None:
            on_result(task.index, result)

    def _task_failed(
        self,
        task: _Task,
        error: BaseException,
        kind: str,
        queue: deque,
        report: ExecutionReport,
    ) -> None:
        task.attempts += 1
        if self.retry.should_retry(error, task.attempts):
            report.retries += 1
            obs.count("resilience.retries")
            task.not_before = time.monotonic() + self.retry.delay(
                task.key, task.attempts - 1
            )
            queue.append(task)
            return
        report.failures.append(
            TaskFailure(
                key=task.key,
                kind=kind,
                error_type=type(error).__name__,
                message=str(error),
                attempts=task.attempts,
            )
        )
        obs.count("resilience.quarantined")
        obs.log.emit(
            "resilience.quarantined",
            key=task.key,
            kind=kind,
            error=type(error).__name__,
            attempts=task.attempts,
        )

    def _rebuild(self, pool, report: ExecutionReport, wait: bool = False):
        # wait=False abandons a pool with a hung worker (joining it
        # would block for the whole hang); wait=True joins a broken
        # pool, whose processes are already gone.
        pool.shutdown(wait=wait, cancel_futures=True)
        report.pool_rebuilds += 1
        obs.count("resilience.pool_rebuilds")
        if report.pool_rebuilds > self.max_pool_rebuilds:
            report.degraded_serial = True
            obs.count("resilience.degraded_serial")
            obs.log.emit(
                "resilience.degraded_serial",
                rebuilds=report.pool_rebuilds,
                limit=self.max_pool_rebuilds,
            )
            return pool  # unused from here on; run() drains inline
        obs.log.emit("resilience.pool_rebuild", rebuilds=report.pool_rebuilds)
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def _drain_inline(self, queue: deque, report, on_result) -> None:
        """Serial in-process execution of the remaining tasks (the
        degraded path, and the whole path for ``max_workers <= 1``).
        No timeout enforcement — there is no worker to abandon."""
        faults.set_inline(True)
        try:
            while queue:
                task = queue.popleft()
                faults.set_context(task.key, task.attempts)
                try:
                    faults.maybe_fire("worker.crash")
                    faults.maybe_fire("worker.hang")
                    faults.maybe_fire("task.error")
                    result = self.fn(task.payload)
                except Exception as error:
                    before = len(report.failures)
                    self._task_failed(task, error, "error", queue, report)
                    if len(report.failures) == before:
                        # Requeued: honour the backoff inline.
                        self.sleep(
                            max(0.0, task.not_before - time.monotonic())
                        )
                        task.not_before = 0.0
                else:
                    self._deliver(task, result, report, on_result)
                finally:
                    faults.set_context(None)
        finally:
            faults.set_inline(False)
