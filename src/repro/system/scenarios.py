"""Named design points (Section IV-B) and fleet traffic scenarios.

From the design-space exploration of Fig. 6 the paper selects:

* **BE** (best energy): L=16, W=2 — 2.14x speedup, -10% energy,
  39.7% average utilization;
* **BP** (best performance): L=32, W=4 — 2.45x speedup, +20% energy,
  17.8% average utilization;
* **BU** (best/lowest utilization): L=32, W=8 — 2.45x speedup,
  +46% energy, 8.9% average utilization.

Beyond the three named points, :class:`TrafficScenario` describes a
*distribution* over workload mixes: the paper evaluates one device
running the whole suite uniformly, but a deployed fleet sees per-device
traffic — a crypto gateway hammers SHA/AES, a vision node runs the
SUSAN kernels, and no two devices have exactly the same mix. A
scenario names a base mix (relative launch frequency per workload) and
a Dirichlet ``concentration`` controlling how tightly individual
devices cluster around it; :mod:`repro.fleet` expands a scenario into
per-device workload-mix weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cgra.fabric import FabricGeometry
from repro.errors import ConfigurationError
from repro.system.params import SystemParams
from repro.system.transrec import TransRecSystem
from repro.workloads.suite import workload_names


@dataclass(frozen=True)
class Scenario:
    """One named design point."""

    name: str
    description: str
    cols: int
    rows: int

    @property
    def geometry(self) -> FabricGeometry:
        return FabricGeometry(rows=self.rows, cols=self.cols)


SCENARIOS: dict[str, Scenario] = {
    "BE": Scenario("BE", "best energy consumption", cols=16, rows=2),
    "BP": Scenario("BP", "best performance", cols=32, rows=4),
    "BU": Scenario("BU", "best (lowest) utilization", cols=32, rows=8),
}


def make_params(
    scenario: str, policy: str = "baseline", **policy_kwargs
) -> SystemParams:
    """System parameters for a named scenario under ``policy``."""
    spec = SCENARIOS.get(scenario)
    if spec is None:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; available: {sorted(SCENARIOS)}"
        )
    return SystemParams(
        geometry=spec.geometry, policy=policy, policy_kwargs=policy_kwargs
    )


def make_system(
    scenario: str, policy: str = "baseline", **policy_kwargs
) -> TransRecSystem:
    """A ready-to-run system for a named scenario under ``policy``."""
    return TransRecSystem(make_params(scenario, policy, **policy_kwargs))


# ----------------------------------------------------------------------
# Fleet traffic scenarios


@dataclass(frozen=True)
class TrafficScenario:
    """A distribution over per-device workload mixes.

    Attributes:
        name: scenario identifier.
        description: one-line summary of the deployment it models.
        mix: relative launch frequency per workload (unnormalised;
            workloads absent from the map get weight 0). Empty selects
            the full suite uniformly.
        concentration: Dirichlet concentration scale — per-device mixes
            are drawn from ``Dirichlet(concentration * normalised
            mix)``, so high values give a homogeneous fleet tightly
            clustered on the base mix and low values a heterogeneous
            one where individual devices specialise.
    """

    name: str
    description: str
    mix: dict[str, float] = field(default_factory=dict)
    concentration: float = 50.0

    def __post_init__(self) -> None:
        if self.concentration <= 0:
            raise ConfigurationError("concentration must be positive")
        known = workload_names()
        unknown = sorted(set(self.mix) - set(known))
        if unknown:
            raise ConfigurationError(
                f"scenario {self.name!r} names unknown workload(s) "
                f"{unknown}; available: {list(known)}"
            )
        for workload, weight in self.mix.items():
            if weight < 0:
                raise ConfigurationError(
                    f"scenario {self.name!r}: negative weight for "
                    f"{workload!r}"
                )
        if self.mix and not any(self.mix.values()):
            raise ConfigurationError(
                f"scenario {self.name!r}: all mix weights are zero"
            )

    @property
    def workloads(self) -> tuple[str, ...]:
        """Workloads with nonzero weight, in canonical suite order."""
        if not self.mix:
            return workload_names()
        return tuple(
            name for name in workload_names() if self.mix.get(name, 0.0) > 0
        )

    def base_weights(self) -> tuple[float, ...]:
        """The normalised base mix over :attr:`workloads` (sums to 1)."""
        names = self.workloads
        if not self.mix:
            return tuple(1.0 / len(names) for _ in names)
        total = sum(self.mix[name] for name in names)
        return tuple(self.mix[name] / total for name in names)


#: Named fleet traffic scenarios — the distributions
#: :class:`repro.fleet.FleetSpec` expands into per-device mixes.
TRAFFIC_SCENARIOS: dict[str, TrafficScenario] = {
    scenario.name: scenario
    for scenario in (
        TrafficScenario(
            "uniform",
            "every device runs the full suite evenly (the paper's "
            "single-device evaluation, fleet-expanded)",
        ),
        TrafficScenario(
            "crypto_gateway",
            "security gateways: hashing and block ciphers dominate, "
            "checksums on every frame",
            mix={"sha": 5.0, "rijndael": 4.0, "crc32": 3.0, "stringsearch": 1.0},
            concentration=40.0,
        ),
        TrafficScenario(
            "edge_vision",
            "camera nodes: SUSAN image pipeline with occasional sorting",
            mix={
                "susan_smoothing": 4.0,
                "susan_edges": 3.0,
                "susan_corners": 3.0,
                "qsort": 1.0,
            },
            concentration=40.0,
        ),
        TrafficScenario(
            "telemetry_node",
            "sensor aggregators: bit manipulation, checksums and "
            "pattern matching over sparse readings",
            mix={"bitcount": 4.0, "crc32": 3.0, "stringsearch": 2.0, "sha": 1.0},
            concentration=25.0,
        ),
        TrafficScenario(
            "navigation",
            "route planners: graph search and sorting with light "
            "integrity checks",
            mix={"dijkstra": 5.0, "qsort": 3.0, "crc32": 1.0},
            concentration=25.0,
        ),
    )
}


def traffic_scenario(name: str) -> TrafficScenario:
    """Look up a named traffic scenario."""
    scenario = TRAFFIC_SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown traffic scenario {name!r}; "
            f"available: {sorted(TRAFFIC_SCENARIOS)}"
        )
    return scenario
