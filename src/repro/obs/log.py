"""Structured narrator logging (``event key=value ...`` on stderr).

Library code must not ``print`` (a ruff ``T201`` ban enforces this
under ``src/repro/``) — progress and status lines go through here
instead, so they never contaminate the machine-diffable stdout the
golden fixtures pin, and downstream tooling can parse them.

Built on :mod:`logging`: one ``repro`` logger with a stderr handler
attached lazily (applications that configure logging themselves can
claim the namespace first and the handler stays out of their way).
"""

from __future__ import annotations

import logging
import sys

__all__ = ["emit", "get_logger", "kv_line", "progress"]

LOGGER_NAME = "repro"

_configured = False


def get_logger(name: str | None = None) -> logging.Logger:
    """The shared ``repro`` logger (or a ``repro.<name>`` child)."""
    global _configured
    root = logging.getLogger(LOGGER_NAME)
    if not _configured:
        _configured = True
        if not root.handlers:
            handler = logging.StreamHandler(sys.stderr)
            handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
            root.addHandler(handler)
            root.setLevel(logging.INFO)
            root.propagate = False
    if name is None:
        return root
    return root.getChild(name)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, str) and (" " in value or not value):
        return repr(value)
    return str(value)


def kv_line(event: str, fields: dict) -> str:
    """Render one structured line: ``event key=value key=value``."""
    parts = [event]
    parts.extend(
        f"{key}={_format_value(value)}" for key, value in fields.items()
    )
    return " ".join(parts)


def emit(event: str, _level: int = logging.INFO, **fields) -> None:
    """Log one structured line on the shared logger."""
    get_logger().log(_level, kv_line(event, fields))


def progress(
    event: str, done: int, total: int, elapsed_s: float, **fields
) -> None:
    """Log a progress tick with a completion ratio and a naive ETA
    (remaining work at the observed average rate)."""
    merged: dict = {"done": f"{done}/{total}"}
    if done > 0 and total > done:
        merged["eta_s"] = round(elapsed_s / done * (total - done), 1)
    merged["elapsed_s"] = round(elapsed_s, 1)
    merged.update(fields)
    emit(event, **merged)
