"""Utilization-coupled temperature model for per-FU aging.

Eq. 1's temperature enters through ``exp(-1500/T)``: hotter devices
age faster. The paper evaluates at a fixed temperature; this extension
couples per-FU temperature to per-FU activity with a simple steady-
state model,

    T(u) = T_ambient + dT_max * u,

so the stress feedback is double: a hot FU is both stressed longer
*and* runs hotter. Balancing therefore helps twice — the per-FU
lifetime computed here shows a super-linear gain over the fixed-T
closed form, which is why thermal-aware floorplans cite utilization
balancing as a thermal technique too (paper refs [3], [26]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.aging.nbti import NBTIModel
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThermalModel:
    """Steady-state activity-to-temperature map.

    Attributes:
        ambient_k: die temperature of an idle FU.
        max_rise_k: additional kelvins at 100% utilization.
    """

    ambient_k: float = 320.0
    max_rise_k: float = 45.0

    def __post_init__(self) -> None:
        if self.ambient_k <= 0:
            raise ConfigurationError("ambient temperature must be positive")
        if self.max_rise_k < 0:
            raise ConfigurationError("temperature rise must be >= 0")

    def temperature(self, utilization: float) -> float:
        """Steady-state temperature (K) at a duty cycle."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        return self.ambient_k + self.max_rise_k * utilization

    def temperature_map(self, utilization: np.ndarray) -> np.ndarray:
        """Per-FU steady-state temperatures for a utilization map."""
        return self.ambient_k + self.max_rise_k * utilization


def thermal_lifetime_years(
    base_model: NBTIModel,
    thermal: ThermalModel,
    utilization: float,
    threshold: float | None = None,
) -> float:
    """Lifetime of one FU with activity-coupled temperature.

    The FU ages under Eq. 1 evaluated at its own steady-state
    temperature; the delay calibration (10% at 3 years, u=1) is kept at
    the *worst-case* temperature so a fully stressed FU matches the
    fixed-T model exactly and cooler FUs live longer.
    """
    hot = NBTIModel(
        temperature_k=thermal.temperature(1.0),
        vdd=base_model.vdd,
        reference_years=base_model.reference_years,
        reference_degradation=base_model.reference_degradation,
        reference_utilization=base_model.reference_utilization,
    )
    if utilization == 0.0:
        return float("inf")
    own_temperature = thermal.temperature(utilization)
    # dVt scales with exp(-1500/T); lifetime scales with its inverse
    # to the 6th power (matched 1/6 exponents).
    vt_ratio = math.exp(-1500.0 / own_temperature) / math.exp(
        -1500.0 / thermal.temperature(1.0)
    )
    fixed_t_lifetime = hot.years_to_degradation(utilization, threshold)
    return fixed_t_lifetime / vt_ratio**6


def thermal_lifetime_map(
    base_model: NBTIModel,
    thermal: ThermalModel,
    utilization: np.ndarray,
    threshold: float | None = None,
) -> np.ndarray:
    """Per-FU thermal-coupled lifetimes for a utilization map."""
    flat = utilization.ravel()
    lifetimes = np.array(
        [
            thermal_lifetime_years(base_model, thermal, float(u), threshold)
            for u in flat
        ]
    )
    return lifetimes.reshape(utilization.shape)


def thermal_lifetime_improvement(
    base_model: NBTIModel,
    thermal: ThermalModel,
    baseline_worst: float,
    proposed_worst: float,
    threshold: float | None = None,
) -> float:
    """Lifetime ratio with thermal coupling (>= the fixed-T ratio)."""
    return thermal_lifetime_years(
        base_model, thermal, proposed_worst, threshold
    ) / thermal_lifetime_years(base_model, thermal, baseline_worst, threshold)
