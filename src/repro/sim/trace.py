"""Committed-instruction trace records.

A trace is the single source of truth shared by every downstream model:
the GPP timing model, the DBT and the CGRA utilization accounting all
walk the same committed trace, which is produced once per workload by
the functional simulator (mirroring how the paper drives everything
from gem5 execution).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.isa.instructions import InstrClass


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One committed instruction.

    Attributes:
        pc: address of the instruction.
        op: mnemonic.
        cls: functional class (ALU/MUL/DIV/LOAD/STORE/BRANCH/JUMP/SYSTEM).
        rd: destination register index or ``None`` (x0 normalised to None).
        rs1: first source register index or ``None`` when unused.
        rs2: second source register index or ``None`` when unused.
        imm: immediate value or ``None``.
        rd_value: value written to ``rd`` (for debugging/verification).
        mem_addr: effective address for loads/stores, else ``None``.
        mem_bytes: access width in bytes (0 for non-memory ops).
        taken: branch outcome; ``None`` for non-control-flow ops.
        next_pc: address of the next committed instruction.
    """

    pc: int
    op: str
    cls: InstrClass
    rd: int | None
    rs1: int | None
    rs2: int | None
    imm: int | None
    rd_value: int | None
    mem_addr: int | None
    mem_bytes: int
    taken: bool | None
    next_pc: int

    @property
    def is_control_flow(self) -> bool:
        """Whether this record may redirect the instruction stream."""
        return self.cls in (InstrClass.BRANCH, InstrClass.JUMP)

    @property
    def redirects(self) -> bool:
        """Whether the instruction actually changed control flow."""
        return self.next_pc != self.pc + 4


class Trace(Sequence[TraceRecord]):
    """An immutable-by-convention sequence of committed instructions."""

    def __init__(self, records: list[TraceRecord], name: str = "") -> None:
        self._records = records
        self.name = name

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index):  # noqa: ANN001 - Sequence protocol
        return self._records[index]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def class_counts(self) -> Counter[InstrClass]:
        """Histogram of committed instructions by functional class."""
        return Counter(record.cls for record in self._records)

    def class_mix(self) -> dict[InstrClass, float]:
        """Fractional instruction mix by class (sums to 1.0)."""
        if not self._records:
            return {}
        total = len(self._records)
        return {cls: count / total for cls, count in self.class_counts().items()}

    def memory_fraction(self) -> float:
        """Fraction of committed instructions that access memory."""
        if not self._records:
            return 0.0
        counts = self.class_counts()
        loads = counts.get(InstrClass.LOAD, 0)
        stores = counts.get(InstrClass.STORE, 0)
        return (loads + stores) / len(self._records)
