"""Edge-case tests for the policy registry and base classes."""

import pytest

from repro.cgra.fabric import FabricGeometry
from repro.core.policy import (
    AllocationPolicy,
    available_policies,
    make_policy,
    register_policy,
)
from repro.errors import ConfigurationError


class TestRegistry:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            @register_policy
            class Duplicate(AllocationPolicy):  # noqa: N801
                name = "baseline"

    def test_policy_kwargs_forwarded(self):
        policy = make_policy("rotation", pattern="diagonal", stride=3)
        assert policy.pattern_name == "diagonal"
        assert policy.stride == 3

    def test_available_policies_sorted(self):
        names = available_policies()
        assert list(names) == sorted(names)
        assert "static_remap" in names

    def test_base_class_is_abstract(self):
        policy = AllocationPolicy()
        policy.bind(FabricGeometry(rows=2, cols=8))
        with pytest.raises(NotImplementedError):
            policy.next_pivot(None, None)


class TestDescriptions:
    @pytest.mark.parametrize(
        "name,kwargs,needle",
        [
            ("baseline", {}, "baseline"),
            ("rotation", {"pattern": "raster"}, "raster"),
            ("random", {"seed": 9}, "seed=9"),
            ("stress_aware", {"interval": 5}, "interval=5"),
        ],
    )
    def test_describe_mentions_configuration(self, name, kwargs, needle):
        assert needle in make_policy(name, **kwargs).describe()

    def test_observe_hook_is_optional(self):
        policy = make_policy("baseline")
        policy.bind(FabricGeometry(rows=2, cols=8))
        policy.observe(None, (0, 0))  # must not raise


class TestRotationStride:
    def test_non_coprime_stride_still_covers_over_time(self):
        """Stride 2 on an even-size pattern halves per-sweep coverage;
        the policy must still cycle (never crash) and revisit cells."""
        from repro.core.allocator import ConfigurationAllocator
        from tests.test_core_allocator import config

        geometry = FabricGeometry(rows=2, cols=4)
        allocator = ConfigurationAllocator(
            geometry, make_policy("rotation", stride=2)
        )
        c = config([(0, 0)], rows=2, cols=4)
        pivots = [allocator.allocate(c).pivot for _ in range(16)]
        assert len(set(pivots)) == 4  # half of the 8 cells, repeated
