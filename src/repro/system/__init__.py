"""Full-system TransRec simulation: GPP + DBT + config cache + CGRA.

:class:`TransRecSystem` consumes a committed trace and produces cycle
counts, energy, utilization maps and cache statistics for both the
stand-alone GPP and the accelerated system, under a chosen allocation
policy. Timing is two-phase: :mod:`repro.system.schedule` records the
policy-independent :class:`LaunchSchedule` once per pipeline and
replays it vectorized under each allocation policy.
:mod:`repro.system.scenarios` provides the paper's BE/BP/BU design
points.
"""

from repro.system.params import SystemParams
from repro.system.scenarios import SCENARIOS, Scenario, make_system
from repro.system.schedule import (
    LaunchSchedule,
    clear_schedule_caches,
    compute_schedule,
    replay_schedule,
    schedule_cache_dir,
    schedule_key,
    set_schedule_cache_dir,
    shared_schedule,
)
from repro.system.stats import SystemResult
from repro.system.transrec import TransRecSystem

__all__ = [
    "SCENARIOS",
    "LaunchSchedule",
    "Scenario",
    "SystemParams",
    "SystemResult",
    "TransRecSystem",
    "clear_schedule_caches",
    "compute_schedule",
    "make_system",
    "replay_schedule",
    "schedule_cache_dir",
    "schedule_key",
    "set_schedule_cache_dir",
    "shared_schedule",
]
