"""Tests for translation-unit discovery."""

from repro.cgra.fabric import FabricGeometry
from repro.dbt.window import UnitLimits, build_unit
from repro.isa.instructions import InstrClass

from tests.support import trace_of


def geometry(rows=2, cols=16):
    return FabricGeometry(rows=rows, cols=cols)


def straight_line_trace(n_alu=8):
    source = "\n".join(f"addi t{i % 3}, t{i % 3}, 1" for i in range(n_alu))
    return trace_of(source + "\nli a7, 93\necall")


class TestBasicUnits:
    def test_builds_unit_from_straight_line(self):
        trace = straight_line_trace(8)
        unit = build_unit(trace, 0, geometry())
        assert unit is not None
        assert unit.start_pc == trace[0].pc
        assert unit.n_instructions >= 3
        assert unit.pc_path[0] == trace[0].pc

    def test_unit_stops_at_system_instruction(self):
        trace = straight_line_trace(8)
        unit = build_unit(trace, 0, geometry())
        # ecall and the preceding li a7 are at the end; the li a7 is
        # mappable but ecall is not, so the path must stop before ecall.
        ecall_pc = trace[len(trace) - 1].pc
        assert ecall_pc not in unit.pc_path

    def test_too_short_unit_rejected(self):
        trace = trace_of("li a0, 1\nli a7, 93\necall")
        assert build_unit(trace, 0, geometry()) is None

    def test_min_instructions_respected(self):
        trace = straight_line_trace(8)
        limits = UnitLimits(min_instructions=100)
        assert build_unit(trace, 0, geometry(), limits) is None

    def test_max_instructions_cap(self):
        trace = straight_line_trace(20)
        limits = UnitLimits(max_instructions=5)
        unit = build_unit(trace, 0, geometry(), limits)
        assert unit.n_instructions == 5

    def test_unit_ends_when_fabric_full(self):
        trace = straight_line_trace(40)
        unit = build_unit(trace, 0, geometry(rows=1, cols=4))
        # Three chained t0 adds can fit at most... each chain per reg.
        assert unit is not None
        assert unit.used_cols <= 4

    def test_div_ends_unit(self):
        trace = trace_of(
            """
            li t0, 8
            li t1, 2
            add t2, t0, t1
            div t3, t0, t1
            add t4, t0, t1
            li a7, 93
            ecall
            """
        )
        unit = build_unit(trace, 0, geometry())
        div_pc = next(r.pc for r in trace if r.op == "div")
        assert div_pc not in unit.pc_path
        assert unit.n_instructions == 3


class TestBranchesAndJumps:
    def test_branches_included_and_counted(self):
        trace = trace_of(
            """
            li t0, 4
            loop:
              addi t0, t0, -1
              bnez t0, loop
            li a7, 93
            ecall
            """
        )
        # Unit starting at loop head spans iterations (branch is taken,
        # path continues at the recorded target).
        loop_start = 1
        unit = build_unit(trace, loop_start, geometry())
        assert unit is not None
        assert unit.n_branches >= 1

    def test_branch_budget_ends_unit(self):
        trace = trace_of(
            """
            li t0, 10
            loop:
              addi t0, t0, -1
              bnez t0, loop
            li a7, 93
            ecall
            """
        )
        limits = UnitLimits(max_branches=2)
        unit = build_unit(trace, 1, geometry(rows=2, cols=64))
        capped = build_unit(trace, 1, geometry(rows=2, cols=64), limits)
        assert capped.n_branches <= 2
        assert capped.n_instructions <= unit.n_instructions

    def test_jal_x0_is_transparent(self):
        trace = trace_of(
            """
            li t0, 1
            j skip
            skip:
            addi t0, t0, 1
            addi t0, t0, 1
            li a7, 93
            ecall
            """
        )
        unit = build_unit(trace, 0, geometry())
        j_record = next(r for r in trace if r.op == "jal")
        assert j_record.pc in set(unit.pc_path)  # on the path
        assert unit.n_instructions > unit.n_ops  # but no fabric op for it

    def test_jalr_ends_unit(self):
        trace = trace_of(
            """
            main:
              li t0, 1
              li t1, 2
              add t2, t0, t1
              call helper
              li a7, 93
              ecall
            helper:
              addi t3, t2, 1
              ret
            """
        )
        unit = build_unit(trace, 0, geometry())
        ret_pc = next(r.pc for r in trace if r.op == "jalr")
        assert ret_pc not in unit.pc_path

    def test_call_link_register_materialised(self):
        trace = trace_of(
            """
            main:
              li t0, 1
              li t1, 2
              call helper
              li a7, 93
              ecall
            helper:
              add t2, t0, t1
              ret
            """
        )
        unit = build_unit(trace, 0, geometry())
        call_record = next(r for r in trace if r.op == "jal")
        assert call_record.pc in unit.pc_path
        jal_ops = [op for op in unit.ops if op.op == "jal"]
        assert len(jal_ops) == 1  # constant generator for ra


class TestPathConsistency:
    def test_pc_path_matches_trace(self):
        trace = straight_line_trace(10)
        unit = build_unit(trace, 0, geometry())
        for offset, pc in enumerate(unit.pc_path):
            assert trace[offset].pc == pc

    def test_ops_reference_valid_offsets(self):
        trace = straight_line_trace(10)
        unit = build_unit(trace, 0, geometry())
        for op in unit.ops:
            assert 0 <= op.trace_offset < unit.n_instructions
