"""Tests for the NBTI model, lifetime analysis and stress history."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aging.guardband import (
    guardband_for_lifetime,
    lifetime_under_guardband,
)
from repro.aging.history import StressHistory
from repro.aging.lifetime import (
    delay_curve,
    failure_order,
    lifetime_improvement,
    lifetime_years,
    surviving_fraction,
)
from repro.aging.nbti import NBTIModel
from repro.errors import ConfigurationError

utils = st.floats(min_value=0.01, max_value=1.0)


@pytest.fixture
def model():
    return NBTIModel()


class TestEquationOne:
    def test_calibration_point(self, model):
        """10% delay increase at 3 years, u=1 (paper Section IV-A)."""
        assert model.delay_increase(3.0, 1.0) == pytest.approx(0.10)

    def test_delta_vt_scales_with_vdd_fourth_power(self):
        low = NBTIModel(vdd=0.6)
        high = NBTIModel(vdd=1.2)
        ratio = high.delta_vt(1.0, 1.0) / low.delta_vt(1.0, 1.0)
        assert ratio == pytest.approx(2.0**4)

    def test_delta_vt_temperature_dependence(self):
        cold = NBTIModel(temperature_k=300.0)
        hot = NBTIModel(temperature_k=400.0)
        assert hot.delta_vt(1.0, 1.0) > cold.delta_vt(1.0, 1.0)

    def test_sixth_root_time_dependence(self, model):
        one = model.delta_vt(1.0, 1.0)
        sixty_four = model.delta_vt(64.0, 1.0)
        assert sixty_four / one == pytest.approx(2.0)

    def test_sixth_root_utilization_dependence(self, model):
        full = model.delta_vt(1.0, 1.0)
        fraction = model.delta_vt(1.0, 1.0 / 64.0)
        assert full / fraction == pytest.approx(2.0)

    def test_zero_utilization_means_no_aging(self, model):
        assert model.delta_vt(10.0, 0.0) == 0.0
        assert model.years_to_degradation(0.0) == math.inf

    def test_input_validation(self, model):
        with pytest.raises(ValueError):
            model.delta_vt(-1.0, 0.5)
        with pytest.raises(ValueError):
            model.delta_vt(1.0, 1.5)
        with pytest.raises(ValueError):
            model.years_to_degradation(0.5, threshold=-0.1)
        with pytest.raises(ConfigurationError):
            NBTIModel(temperature_k=-2)
        with pytest.raises(ConfigurationError):
            NBTIModel(vdd=0)

    def test_nan_rejected(self, model):
        with pytest.raises(ValueError):
            model.delta_vt(float("nan"), 0.5)
        with pytest.raises(ValueError):
            model.delta_vt(1.0, float("nan"))
        with pytest.raises(ValueError):
            model.years_to_degradation(float("nan"))
        with pytest.raises(ValueError):
            model.delta_vt(3.0, np.array([0.5, float("nan")]))

    def test_batched_matches_scalar(self, model):
        utils_matrix = np.array([[1.0, 0.5], [0.25, 0.125]])
        batched = model.delta_vt(3.0, utils_matrix)
        for row in range(2):
            for col in range(2):
                assert batched[row, col] == pytest.approx(
                    model.delta_vt(3.0, float(utils_matrix[row, col]))
                )
        lifetimes = model.years_to_degradation(utils_matrix)
        assert lifetimes.shape == (2, 2)
        assert lifetimes[0, 0] == pytest.approx(3.0)

    @given(u=utils)
    def test_monotonic_in_utilization(self, u):
        model = NBTIModel()
        assert model.delay_increase(3.0, u) <= model.delay_increase(3.0, 1.0)

    @given(u=utils, years=st.floats(min_value=0.1, max_value=30.0))
    def test_inversion_round_trip(self, u, years):
        model = NBTIModel()
        degradation = model.delay_increase(years, u)
        recovered = model.years_to_degradation(u, threshold=degradation)
        assert recovered == pytest.approx(years, rel=1e-6)


class TestLifetime:
    def test_closed_form(self, model):
        """lifetime(u) = 3 years / u under default calibration."""
        assert lifetime_years(model, 1.0) == pytest.approx(3.0)
        assert lifetime_years(model, 0.5) == pytest.approx(6.0)
        assert lifetime_years(model, 0.25) == pytest.approx(12.0)

    def test_improvement_equals_util_ratio_table1(self, model):
        """The three Table I rows compose as worst-util ratios."""
        assert lifetime_improvement(model, 0.945, 0.411) == pytest.approx(
            2.29, abs=0.01
        )
        assert lifetime_improvement(model, 0.981, 0.224) == pytest.approx(
            4.37, abs=0.02
        )
        assert lifetime_improvement(model, 0.981, 0.123) == pytest.approx(
            7.97, abs=0.03
        )

    @given(u_base=utils, u_prop=utils)
    def test_improvement_ratio_property(self, u_base, u_prop):
        model = NBTIModel()
        improvement = lifetime_improvement(model, u_base, u_prop)
        assert improvement == pytest.approx(u_base / u_prop, rel=1e-9)

    def test_delay_curve_monotonic(self, model):
        years = np.linspace(0.1, 10, 25)
        curve = delay_curve(model, 0.9, years)
        assert (np.diff(curve) > 0).all()

    def test_be_scenario_lifetimes(self, model):
        """BE: 10% degradation at ~3 years baseline vs ~7 proposed."""
        baseline_years = lifetime_years(model, 0.945)
        proposed_years = lifetime_years(model, 0.411)
        assert baseline_years == pytest.approx(3.17, abs=0.01)
        assert proposed_years == pytest.approx(7.30, abs=0.01)

    def test_failure_order_and_survival(self, model):
        utilization = np.array([[1.0, 0.5], [0.25, 0.0]])
        lifetimes = failure_order(model, utilization)
        assert lifetimes[0, 0] == pytest.approx(3.0)
        assert lifetimes[1, 1] == math.inf
        assert surviving_fraction(model, utilization, 4.0) == 0.75


class TestGuardband:
    def test_round_trip(self, model):
        guardband = guardband_for_lifetime(model, 0.8, 5.0)
        assert lifetime_under_guardband(model, 0.8, guardband) == (
            pytest.approx(5.0)
        )

    def test_larger_guardband_longer_life(self, model):
        small = lifetime_under_guardband(model, 0.9, 0.05)
        large = lifetime_under_guardband(model, 0.9, 0.10)
        assert large > small

    def test_validation(self, model):
        with pytest.raises(ValueError):
            guardband_for_lifetime(model, 0.5, -1.0)
        with pytest.raises(ValueError):
            lifetime_under_guardband(model, 0.5, 0.0)


class TestStressHistory:
    def test_effective_stress_accumulates(self):
        history = StressHistory()
        history.add_epoch(2.0, 0.5)
        history.add_epoch(1.0, 1.0)
        assert history.elapsed_years == 3.0
        assert history.effective_stress_years == 2.0
        assert history.equivalent_utilization() == pytest.approx(2 / 3)

    def test_equivalent_to_constant_duty(self, model):
        """Epochs at varying duty equal one epoch at the average duty."""
        history = StressHistory()
        history.add_epoch(1.5, 0.2)
        history.add_epoch(1.5, 0.8)
        constant = model.delay_increase(3.0, 0.5)
        assert history.delay_increase(model) == pytest.approx(constant)

    def test_remaining_years(self, model):
        history = StressHistory()
        history.add_epoch(1.5, 1.0)  # half the 3-year budget burned
        assert history.remaining_years(model, 1.0) == pytest.approx(1.5)
        assert history.remaining_years(model, 0.5) == pytest.approx(3.0)
        assert history.remaining_years(model, 0.0) == math.inf

    def test_exhausted_budget(self, model):
        history = StressHistory()
        history.add_epoch(5.0, 1.0)
        assert history.remaining_years(model, 0.5) == 0.0

    def test_validation(self):
        history = StressHistory()
        with pytest.raises(ValueError):
            history.add_epoch(-1.0, 0.5)
        with pytest.raises(ValueError):
            history.add_epoch(1.0, 2.0)

    def test_empty_history(self, model):
        history = StressHistory()
        assert history.equivalent_utilization() == 0.0
        assert history.delay_increase(model) == 0.0
