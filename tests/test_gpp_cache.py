"""Tests for the set-associative cache model."""

import pytest

from repro.errors import ConfigurationError
from repro.gpp.cache import CacheModel, CacheParams


def small_cache(ways=2, sets=2, line=16, penalty=10):
    return CacheModel(
        CacheParams(
            size_bytes=ways * sets * line,
            line_bytes=line,
            ways=ways,
            miss_penalty=penalty,
        )
    )


class TestParams:
    def test_n_sets(self):
        params = CacheParams(size_bytes=1024, line_bytes=64, ways=4)
        assert params.n_sets == 4

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheParams(size_bytes=1000)
        with pytest.raises(ConfigurationError):
            CacheParams(line_bytes=48)
        with pytest.raises(ConfigurationError):
            CacheParams(ways=3)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheParams(size_bytes=64, line_bytes=64, ways=4)


class TestBehaviour:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.access(0x1004)  # same line

    def test_distinct_lines_miss(self):
        cache = small_cache(line=16)
        cache.access(0x0)
        assert not cache.access(0x10)

    def test_lru_eviction(self):
        cache = small_cache(ways=2, sets=1, line=16)
        a, b, c = 0x000, 0x010, 0x020  # all map to the single set
        cache.access(a)
        cache.access(b)
        cache.access(a)      # a is now MRU
        cache.access(c)      # evicts b
        assert cache.access(a)
        assert not cache.access(b)

    def test_set_indexing_avoids_conflicts(self):
        cache = small_cache(ways=1, sets=2, line=16)
        # 0x00 -> set 0, 0x10 -> set 1: no conflict
        cache.access(0x00)
        cache.access(0x10)
        assert cache.access(0x00)
        assert cache.access(0x10)

    def test_access_cycles(self):
        cache = small_cache(penalty=7)
        assert cache.access_cycles(0x40) == 7
        assert cache.access_cycles(0x40) == 0

    def test_stats(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(0x1000)
        assert cache.accesses == 3
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.miss_rate == pytest.approx(2 / 3)
        cache.reset_stats()
        assert cache.accesses == 0
        assert cache.miss_rate == 0.0
