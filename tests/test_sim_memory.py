"""Tests for the sparse memory model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryAccessError
from repro.sim.memory import PAGE_SIZE, Memory


class TestScalarAccess:
    def test_default_zero(self):
        memory = Memory()
        assert memory.read_u8(0x1234) == 0
        assert memory.read_u32(0x1000) == 0

    def test_byte_round_trip(self):
        memory = Memory()
        memory.write_u8(10, 0xAB)
        assert memory.read_u8(10) == 0xAB

    def test_byte_truncates(self):
        memory = Memory()
        memory.write_u8(0, 0x1FF)
        assert memory.read_u8(0) == 0xFF

    def test_word_little_endian(self):
        memory = Memory()
        memory.write_u32(0x100, 0x11223344)
        assert memory.read_u8(0x100) == 0x44
        assert memory.read_u8(0x103) == 0x11

    def test_half_round_trip(self):
        memory = Memory()
        memory.write_u16(0x200, 0xBEEF)
        assert memory.read_u16(0x200) == 0xBEEF

    def test_word_masks_to_32_bits(self):
        memory = Memory()
        memory.write_u32(0, 0x1_0000_0001)
        assert memory.read_u32(0) == 1

    def test_misaligned_word_raises(self):
        memory = Memory()
        with pytest.raises(MemoryAccessError):
            memory.read_u32(2)
        with pytest.raises(MemoryAccessError):
            memory.write_u32(1, 0)

    def test_misaligned_half_raises(self):
        memory = Memory()
        with pytest.raises(MemoryAccessError):
            memory.read_u16(1)

    def test_cross_page_bytes(self):
        memory = Memory()
        boundary = PAGE_SIZE - 1
        memory.write_u8(boundary, 1)
        memory.write_u8(boundary + 1, 2)
        assert memory.read_u8(boundary) == 1
        assert memory.read_u8(boundary + 1) == 2


class TestBulkAccess:
    def test_load_and_read_bytes(self):
        memory = Memory()
        memory.load_bytes(0x500, b"hello world")
        assert memory.read_bytes(0x500, 11) == b"hello world"

    def test_read_cstring(self):
        memory = Memory()
        memory.load_bytes(0x600, b"abc\x00def")
        assert memory.read_cstring(0x600) == b"abc"

    def test_read_cstring_unterminated_raises(self):
        memory = Memory()
        memory.load_bytes(0, b"\x01" * 16)
        with pytest.raises(MemoryAccessError):
            memory.read_cstring(0, limit=8)

    def test_touched_bytes_grows_lazily(self):
        memory = Memory()
        assert memory.touched_bytes == 0
        memory.write_u8(0, 1)
        assert memory.touched_bytes == PAGE_SIZE


@given(
    address=st.integers(min_value=0, max_value=0xFFFF_FFF0),
    value=st.integers(min_value=0, max_value=0xFFFF_FFFF),
)
def test_word_round_trip_property(address, value):
    address &= ~3
    memory = Memory()
    memory.write_u32(address, value)
    assert memory.read_u32(address) == value
