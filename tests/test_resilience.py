"""Tests for repro.resilience: fault injection, retry policy, and the
resilient executor's recovery + bit-identity guarantees."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, PolicySpec
from repro.errors import (
    ConfigurationError,
    InjectedFaultError,
    MappingError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.fleet import FleetRunner, FleetSpec
from repro.fleet.store import ResultStore, ShardRecord
from repro.resilience import (
    ExecutionReport,
    FaultPlan,
    FaultSpec,
    ResilientExecutor,
    RetryPolicy,
)
from repro.resilience import faults


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.deactivate()
    faults.set_context(None)
    yield
    faults.deactivate()
    faults.set_context(None)


# -- retry policy ----------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    key=st.text(min_size=0, max_size=20),
    max_attempts=st.integers(1, 6),
)
def test_backoff_sequence_is_deterministic(seed, key, max_attempts):
    policy = RetryPolicy(max_attempts=max_attempts, seed=seed)
    again = RetryPolicy(max_attempts=max_attempts, seed=seed)
    assert policy.delays(key) == again.delays(key)
    assert len(policy.delays(key)) == max_attempts - 1


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**31), attempt=st.integers(0, 10))
def test_backoff_delay_within_jitter_envelope(seed, attempt):
    policy = RetryPolicy(
        base_delay=0.05, backoff=2.0, max_delay=2.0, jitter=0.5, seed=seed
    )
    raw = min(2.0, 0.05 * 2.0**attempt)
    delay = policy.delay("k", attempt)
    assert raw <= delay <= raw * 1.5


def test_backoff_differs_across_seeds_and_keys():
    assert RetryPolicy(seed=1).delays("k") != RetryPolicy(seed=2).delays("k")
    policy = RetryPolicy(seed=3)
    assert policy.delays("a") != policy.delays("b")


def test_retry_classification():
    policy = RetryPolicy()
    assert policy.retryable(WorkerCrashError("w"))
    assert policy.retryable(TaskTimeoutError("t"))
    assert policy.retryable(InjectedFaultError("i"))
    assert policy.retryable(OSError("disk"))
    assert not policy.retryable(ConfigurationError("bad"))
    assert not policy.retryable(MappingError("bad"))
    assert not policy.retryable(ValueError("bad"))
    assert not policy.retryable(RuntimeError("unknown"))  # unknown: no retry


def test_should_retry_respects_attempt_budget():
    policy = RetryPolicy(max_attempts=2)
    error = WorkerCrashError("w")
    assert policy.should_retry(error, 1)
    assert not policy.should_retry(error, 2)


def test_retry_call_retries_then_succeeds():
    calls = {"n": 0}
    slept = []

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError("transient")
        return "done"

    policy = RetryPolicy(max_attempts=3, base_delay=0.25, jitter=0.0)
    assert policy.call(flaky, key="k", sleep=slept.append) == "done"
    assert calls["n"] == 3
    assert slept == [policy.delay("k", 0), policy.delay("k", 1)]


def test_retry_call_raises_non_retryable_immediately():
    calls = {"n": 0}

    def broken():
        calls["n"] += 1
        raise ConfigurationError("deterministic")

    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=5).call(broken, sleep=lambda _: None)
    assert calls["n"] == 1


def test_retry_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=2.0)


# -- fault plan ------------------------------------------------------------


def test_fault_plan_round_trips_via_json():
    plan = FaultPlan(
        specs=(
            FaultSpec("worker.crash", match="g0", times=2),
            FaultSpec("worker.hang", seconds=1.5, max_attempt=None),
        )
    )
    assert FaultPlan.from_jsonable(plan.to_jsonable()) == plan
    assert FaultPlan.from_env(json.dumps(plan.to_jsonable())) == plan


def test_fault_plan_rejects_unknown_site():
    with pytest.raises(ConfigurationError, match="unknown fault site"):
        FaultSpec("no.such.site")


def test_fault_env_rejects_bad_json():
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        FaultPlan.from_env("{nope")


def test_no_plan_is_a_noop():
    faults.maybe_fire("task.error")  # must not raise
    assert faults.corrupt_bytes("checkpoint.corrupt", b"data") == b"data"


def test_task_error_fires_match_and_budget():
    faults.activate(FaultPlan.single("task.error", match="wanted", times=1))
    faults.set_context("other-task", 0)
    faults.maybe_fire("task.error")  # key does not match
    faults.set_context("wanted-task", 0)
    with pytest.raises(InjectedFaultError):
        faults.maybe_fire("task.error")
    faults.maybe_fire("task.error")  # times budget exhausted
    assert faults.fired_counts() == {"task.error": 1}


def test_max_attempt_gates_firing():
    faults.activate(FaultPlan.single("task.error", max_attempt=1, times=None))
    faults.set_context("t", 0)
    with pytest.raises(InjectedFaultError):
        faults.maybe_fire("task.error")
    faults.set_context("t", 1)  # a retry: attempt >= max_attempt
    faults.maybe_fire("task.error")


def test_inline_crash_raises_instead_of_exiting():
    faults.activate(FaultPlan.single("worker.crash"))
    faults.set_inline(True)
    try:
        with pytest.raises(WorkerCrashError):
            faults.maybe_fire("worker.crash")
    finally:
        faults.set_inline(False)


def test_corrupt_bytes_damages_payload():
    faults.activate(FaultPlan.single("checkpoint.corrupt"))
    data = b"x" * 100
    corrupted = faults.corrupt_bytes("checkpoint.corrupt", data)
    assert corrupted != data
    # budget exhausted: subsequent writes are clean
    assert faults.corrupt_bytes("checkpoint.corrupt", data) == data


def _rate_fire_pattern():
    faults.activate(
        FaultPlan.single(
            "task.error", rate=0.5, seed=42, times=None, max_attempt=None
        )
    )
    fired = []
    for call in range(20):
        faults.set_context(f"k{call}", 0)
        try:
            faults.maybe_fire("task.error")
            fired.append(False)
        except InjectedFaultError:
            fired.append(True)
    return fired


def test_seeded_rate_draw_is_deterministic():
    first = _rate_fire_pattern()
    assert _rate_fire_pattern() == first
    assert any(first) and not all(first)


# -- executor --------------------------------------------------------------


def _square(x):
    return x * x


def _fast_retry():
    return RetryPolicy(base_delay=0.01, max_delay=0.05)


def test_executor_plain_run_parallel_and_inline():
    for workers in (1, 3):
        report = ResilientExecutor(_square, workers).run(list(range(8)))
        assert report.results == [x * x for x in range(8)]
        assert report.ok
        assert report.retries == report.timeouts == report.pool_rebuilds == 0
        assert not report.degraded_serial


def test_executor_empty_and_key_validation():
    executor = ResilientExecutor(_square, 2)
    assert executor.run([]).results == []
    with pytest.raises(ValueError, match="keys"):
        executor.run([1, 2], keys=["only-one"])


def test_executor_streams_each_result_once():
    seen = []
    report = ResilientExecutor(_square, 2).run(
        list(range(6)), on_result=lambda i, r: seen.append((i, r))
    )
    assert report.ok
    assert sorted(seen) == [(i, i * i) for i in range(6)]


def test_executor_retries_injected_task_error():
    faults.activate(FaultPlan.single("task.error", match="task-2"))
    report = ResilientExecutor(_square, 2, retry=_fast_retry()).run(
        list(range(5))
    )
    assert report.results == [x * x for x in range(5)]
    assert report.retries == 1 and report.ok


def test_executor_quarantines_poison_task():
    faults.activate(
        FaultPlan.single(
            "task.error", match="task-1", times=None, max_attempt=None
        )
    )
    report = ResilientExecutor(_square, 2, retry=_fast_retry()).run(
        list(range(4))
    )
    assert report.results[1] is None
    assert [report.results[i] for i in (0, 2, 3)] == [0, 4, 9]
    (failure,) = report.failures
    assert failure.key == "task-1"
    assert failure.kind == "error"
    assert failure.error_type == "InjectedFaultError"
    assert failure.attempts == _fast_retry().max_attempts
    payload = failure.to_jsonable()
    assert payload["key"] == "task-1" and payload["attempts"] == 3


def test_executor_survives_worker_crash():
    faults.activate(FaultPlan.single("worker.crash", match="task-0"))
    report = ResilientExecutor(_square, 2, retry=_fast_retry()).run(
        list(range(6))
    )
    assert report.results == [x * x for x in range(6)]
    assert report.pool_rebuilds >= 1
    assert report.ok and not report.degraded_serial


def test_executor_times_out_hung_worker():
    faults.activate(
        FaultPlan.single("worker.hang", match="task-1", seconds=3.0)
    )
    report = ResilientExecutor(
        _square, 2, retry=_fast_retry(), task_timeout=0.5
    ).run(list(range(4)))
    assert report.results == [0, 1, 4, 9]
    assert report.timeouts == 1
    assert report.pool_rebuilds >= 1
    assert report.ok


def test_executor_degrades_to_serial_and_stays_bit_identical():
    reference = ResilientExecutor(_square, 2).run(list(range(6))).results
    faults.activate(FaultPlan(specs=(FaultSpec("worker.crash", times=None),)))
    report = ResilientExecutor(
        _square, 2, retry=_fast_retry(), max_pool_rebuilds=0
    ).run(list(range(6)))
    assert report.degraded_serial
    assert report.results == reference  # serial ≡ parallel ≡ degraded
    assert report.ok


def test_executor_counts_into_telemetry():
    faults.activate(FaultPlan.single("task.error", match="task-0"))
    with obs.telemetry():
        obs.reset()
        ResilientExecutor(_square, 2, retry=_fast_retry()).run(list(range(3)))
        counters = dict(obs.state.counters)
        obs.reset()
    assert counters.get("resilience.retries") == 1


def test_execution_report_ok_flag():
    report = ExecutionReport(results=[1])
    assert report.ok
    report.failures.append(object())
    assert not report.ok


# -- campaign runner integration ------------------------------------------


def _campaign_spec():
    return CampaignSpec(
        name="resilience",
        geometries=((2, 8),),
        policies=(PolicySpec.make("baseline"), PolicySpec.make("rotation")),
        workloads=("crc32",),
    )


def test_campaign_bit_identical_under_injected_faults():
    spec = _campaign_spec()
    reference = CampaignRunner(max_workers=2).run(spec)
    faults.activate(FaultPlan.single("task.error"))
    chaotic = CampaignRunner(max_workers=2, retry=_fast_retry()).run(spec)
    assert not chaotic.failures
    assert json.dumps(chaotic.summaries(), sort_keys=True) == json.dumps(
        reference.summaries(), sort_keys=True
    )


def test_campaign_surfaces_quarantined_groups(tmp_path):
    spec = _campaign_spec()
    faults.activate(
        FaultPlan.single(
            "task.error", match="group:0", times=None, max_attempt=None
        )
    )
    result = CampaignRunner(
        max_workers=2,
        retry=_fast_retry(),
        artifact_dir=tmp_path,
        share_schedules=False,  # one group per point: only group 0 dies
    ).run(spec)
    assert result.failures, "expected a quarantined group"
    assert len(result.runs) == len(spec.design_points()) - 1
    failed_points = result.failures[0].detail["points"]
    assert len(failed_points) == 1
    payload = json.loads((tmp_path / "failures.json").read_text())
    assert payload["failures"][0]["detail"]["points"] == failed_points
    assert payload["interrupted"] is False
    # completed points still wrote their per-point artifacts
    for point in result.runs:
        assert (tmp_path / f"{point.key}.json").exists()


def test_campaign_interrupt_salvages_partial_artifacts(tmp_path, monkeypatch):
    import repro.campaign.runner as runner_module

    spec = _campaign_spec()
    real_evaluate = runner_module.evaluate_design_point
    calls = {"n": 0}

    def interrupting(point, *args, **kwargs):
        if calls["n"] >= 1:
            raise KeyboardInterrupt
        calls["n"] += 1
        return real_evaluate(point, *args, **kwargs)

    monkeypatch.setattr(
        runner_module, "evaluate_design_point", interrupting
    )
    runner = CampaignRunner(artifact_dir=tmp_path)
    with pytest.raises(KeyboardInterrupt):
        runner.run(spec)
    manifest = json.loads((tmp_path / "campaign.json").read_text())
    assert manifest["interrupted"] is True
    assert len(manifest["design_points"]) == 1
    completed_key = manifest["design_points"][0]
    assert (tmp_path / f"{completed_key}.json").exists()
    failures = json.loads((tmp_path / "failures.json").read_text())
    assert failures["interrupted"] is True


# -- fleet runner integration ---------------------------------------------


def _fleet_spec():
    return FleetSpec(
        name="resilience_fleet",
        rows=4,
        cols=4,
        policies=(PolicySpec.make("baseline"),),
        scenario="uniform",
        n_devices=128,
        devices_per_shard=32,
        seed=5,
    )


def _fleet_payload(result):
    return json.dumps(
        {name: agg.to_jsonable() for name, agg in result.aggregates.items()},
        sort_keys=True,
    )


def test_fleet_store_append_failure_degrades_not_aborts(tmp_path):
    spec = _fleet_spec()
    reference = FleetRunner().run(spec)
    faults.activate(FaultPlan.single("store.append", times=2))
    with obs.telemetry():
        obs.reset()
        result = FleetRunner(store_dir=tmp_path / "store").run(spec)
        counters = dict(obs.state.counters)
        obs.reset()
    assert result.store_append_errors == 2
    assert counters.get("fleet.store.append_errors") == 2
    # merged aggregates unaffected — only resumability was lost
    assert _fleet_payload(result) == _fleet_payload(reference)
    # the un-appended records simply re-run on resume, bit-identically
    resumed = FleetRunner(store_dir=tmp_path / "store").run(spec)
    assert resumed.shards_run > 0 and resumed.shards_resumed > 0
    assert _fleet_payload(resumed) == _fleet_payload(reference)


def test_fleet_summary_reports_skip_breakdown(tmp_path):
    spec = _fleet_spec()
    store_dir = tmp_path / "store"
    FleetRunner(store_dir=store_dir).run(spec)
    store = ResultStore(store_dir)
    # one stale-version line, one torn line, one foreign record
    first_line = store.path.read_text().splitlines()[0]
    stale_payload = dict(json.loads(first_line), version=999)
    foreign = ShardRecord.from_jsonable(json.loads(first_line))
    foreign.fingerprint = "foreign"
    store.append(foreign)
    with store.path.open("a") as handle:
        handle.write(json.dumps(stale_payload) + "\n")
        handle.write('{"torn": ')  # a write that died mid-line
    result = FleetRunner(store_dir=store_dir).run(spec)
    assert result.store_skips.stale == 1
    assert result.store_skips.torn == 1
    assert result.store_skips.foreign == 1
    assert result.store_lines_skipped == 3
    summary = json.loads((store_dir / "fleet_summary.json").read_text())
    assert summary["store_skips"] == {
        "torn": 1,
        "stale": 1,
        "corrupt": 0,
        "foreign": 1,
        "total": 3,
    }
    assert summary["failures"] == []


def test_fleet_checkpoint_corruption_recomputes_bit_identically(tmp_path):
    spec = _fleet_spec()
    reference = FleetRunner().run(spec)
    faults.activate(
        FaultPlan.single("checkpoint.corrupt", times=None, max_attempt=None)
    )
    result = FleetRunner(checkpoint_dir=tmp_path / "ckpt").run(spec)
    assert _fleet_payload(result) == _fleet_payload(reference)
    faults.deactivate()
    # every checkpoint was corrupted on disk: a re-run must recompute
    # (load -> None) and still agree
    with obs.telemetry():
        obs.reset()
        rerun = FleetRunner(checkpoint_dir=tmp_path / "ckpt").run(spec)
        counters = dict(obs.state.counters)
        obs.reset()
    assert counters.get("fleet.checkpoint.corrupt", 0) > 0
    assert _fleet_payload(rerun) == _fleet_payload(reference)


def test_fleet_parallel_equals_serial_under_crash():
    spec = _fleet_spec()
    reference = FleetRunner().run(spec)
    faults.activate(FaultPlan.single("worker.crash", match="shards:0"))
    result = FleetRunner(max_workers=2, retry=_fast_retry()).run(spec)
    assert not result.failures
    assert _fleet_payload(result) == _fleet_payload(reference)
