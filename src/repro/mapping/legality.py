"""Mapper-independent legality checking against the DFG oracle.

Any mapper's output must satisfy the fabric's structural rules; this
module validates them *independently* of the scheduler's incremental
bookkeeping, using :func:`repro.dbt.dfg.build_dfg` as the dependence
oracle:

* **geometry** — every op inside the unit's virtual grid;
* **exclusivity** — no two ops share a virtual cell;
* **FU spans** — each op's kind matches its instruction class and its
  width matches the kind's column latency;
* **dependences** — for every DFG edge, the consumer starts at or
  after the producer's last column (the left-to-right interconnect
  carries values forward only);
* **memory ports** — one pipelined read and one pipelined write port:
  issue windows of two loads (or two stores) never overlap;
* **routing** — per-column context-line pressure within the geometry's
  declared budget (:mod:`repro.mapping.routing`). The check always
  runs; with no declared budget (the default fabric) routing is
  elastic and can never fail, so the paper pipeline is unaffected.

The checker reports *all* violations (not just the first) so property
tests produce actionable failures.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.cgra.configuration import VirtualConfiguration
from repro.cgra.fabric import FabricGeometry
from repro.cgra.fu import (
    MEM_PORT_ISSUE_COLUMNS,
    FUKind,
    fu_kind_for,
    latency_columns,
)
from repro.dbt.dfg import build_dfg
from repro.errors import MappingError
from repro.isa.instructions import InstrClass
from repro.mapping.routing import routing_violations
from repro.sim.trace import TraceRecord


@dataclass(frozen=True)
class LegalityReport:
    """Outcome of checking one unit; empty ``violations`` means legal."""

    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def check_unit(
    unit: VirtualConfiguration,
    records: Sequence[TraceRecord],
    geometry: FabricGeometry | None = None,
) -> LegalityReport:
    """Validate ``unit`` against the instruction window it maps.

    ``records[i]`` must be the instruction at ``unit.pc_path[i]`` (the
    window the mapper was given). ``geometry`` supplies the routing
    budget for the context-line check; omitted, it is derived from the
    unit's grid shape (default sizing — elastic routing).
    """
    violations: list[str] = []
    records = tuple(records)
    ops_by_offset: dict[int, object] = {}

    if len(records) < unit.n_instructions:
        violations.append(
            f"window has {len(records)} records for "
            f"{unit.n_instructions} instructions"
        )
        return LegalityReport(violations=tuple(violations))
    # The oracle is only as good as its window: a misaligned one would
    # build the wrong DFG and validate against it, so check alignment.
    for offset in range(unit.n_instructions):
        if records[offset].pc != unit.pc_path[offset]:
            violations.append(
                f"window misaligned at offset {offset}: record pc "
                f"{records[offset].pc:#x} != path pc "
                f"{unit.pc_path[offset]:#x}"
            )
            return LegalityReport(violations=tuple(violations))

    # -- per-op structure: geometry, FU kind/span, offset sanity -------
    for op in unit.ops:
        where = f"op {op.op!r} at ({op.row},{op.col})"
        if not (0 <= op.row < unit.geometry_rows):
            violations.append(f"{where}: row outside grid")
        if op.col < 0 or op.end_col > unit.geometry_cols:
            violations.append(f"{where}: columns outside grid")
        if not (0 <= op.trace_offset < unit.n_instructions):
            violations.append(f"{where}: trace offset out of range")
            continue
        if op.trace_offset in ops_by_offset:
            violations.append(
                f"{where}: duplicate op for offset {op.trace_offset}"
            )
            continue
        ops_by_offset[op.trace_offset] = op
        record = records[op.trace_offset]
        if record.cls is InstrClass.JUMP:
            # jal link-address constant: a one-column ALU op.
            expected = FUKind.ALU if record.op == "jal" else None
        else:
            expected = fu_kind_for(record.cls)
        if expected is None:
            violations.append(f"{where}: unmappable class {record.cls}")
            continue
        if op.kind is not expected:
            violations.append(
                f"{where}: kind {op.kind} != {expected} for {record.op}"
            )
        if op.width != latency_columns(op.kind):
            violations.append(
                f"{where}: width {op.width} != latency span "
                f"{latency_columns(op.kind)}"
            )

    # -- exclusivity ---------------------------------------------------
    seen: dict[tuple[int, int], object] = {}
    for op in unit.ops:
        for cell in op.cells():
            other = seen.get(cell)
            if other is not None:
                violations.append(
                    f"ops {other.op!r} and {op.op!r} overlap at {cell}"
                )
            seen[cell] = op

    # -- dependences against the DFG oracle ----------------------------
    graph = build_dfg(records[: unit.n_instructions])
    for producer, consumer in graph.edges:
        producer_op = ops_by_offset.get(producer)
        consumer_op = ops_by_offset.get(consumer)
        if producer_op is None or consumer_op is None:
            continue  # edges through non-fabric instructions
        if consumer_op.col < producer_op.end_col:
            kind = graph.edges[producer, consumer]["kind"]
            violations.append(
                f"{kind} dependence {producer}->{consumer} placed "
                f"backwards: consumer col {consumer_op.col} < producer "
                f"end {producer_op.end_col}"
            )

    # -- pipelined memory ports ----------------------------------------
    for port_kind in (FUKind.LOAD, FUKind.STORE):
        issues = sorted(
            op.col for op in unit.ops if op.kind is port_kind
        )
        for first, second in zip(issues, issues[1:]):
            if second - first < MEM_PORT_ISSUE_COLUMNS:
                violations.append(
                    f"two {port_kind.value} ops issue at columns "
                    f"{first} and {second}: port accepts one access "
                    f"per {MEM_PORT_ISSUE_COLUMNS} columns"
                )

    # -- context-line routing ------------------------------------------
    violations.extend(routing_violations(unit, records, geometry))

    return LegalityReport(violations=tuple(violations))


def assert_legal(
    unit: VirtualConfiguration,
    records: Sequence[TraceRecord],
    geometry: FabricGeometry | None = None,
) -> None:
    """Raise :class:`MappingError` when ``unit`` violates any rule."""
    report = check_unit(unit, records, geometry)
    if not report.ok:
        summary = "; ".join(report.violations[:5])
        raise MappingError(
            f"illegal configuration at pc {unit.start_pc:#x} "
            f"({len(report.violations)} violation(s)): {summary}"
        )
