"""Tests for the synthetic workload generators."""

import pytest

from repro.cgra.fabric import FabricGeometry
from repro.dbt.window import build_unit
from repro.sim.cpu import CPU
from repro.system.params import SystemParams
from repro.system.transrec import TransRecSystem
from repro.workloads.synthetic import (
    branchy_kernel,
    chain_kernel,
    memory_kernel,
    parallel_kernel,
)


def trace_of(program):
    return CPU(program).run().trace


class TestGenerators:
    def test_chain_runs(self):
        trace = trace_of(chain_kernel(length=16, iterations=5))
        assert len(trace) > 16 * 5

    def test_parallel_runs(self):
        trace = trace_of(parallel_kernel(lanes=4, iterations=5))
        assert len(trace) > 0

    def test_parallel_validates_lanes(self):
        with pytest.raises(ValueError):
            parallel_kernel(lanes=1)
        with pytest.raises(ValueError):
            parallel_kernel(lanes=9)

    def test_memory_checksum_deterministic(self):
        first = CPU(memory_kernel(n_words=16, iterations=3)).run()
        second = CPU(memory_kernel(n_words=16, iterations=3)).run()
        assert first.exit_code == second.exit_code

    def test_branchy_validates_period(self):
        with pytest.raises(ValueError):
            branchy_kernel(period=0)


class TestShapeProperties:
    """The generators must actually produce the shapes they promise."""

    def test_chain_maps_to_single_row(self):
        trace = trace_of(chain_kernel(length=20, iterations=2))
        # Schedule from the loop head (target of the backward branch),
        # past the independent li prologue.
        backward = next(
            r for r in trace if r.taken and r.imm is not None and r.imm < 0
        )
        loop_head = next(
            i for i, r in enumerate(trace) if r.pc == backward.pc + backward.imm
        )
        unit = build_unit(trace, loop_head, FabricGeometry(rows=4, cols=32))
        assert unit is not None
        # Long and thin: the serial chain fills columns; only the loop
        # counter/branch lane sits beside it.
        assert unit.used_rows <= 2
        assert unit.used_cols >= unit.n_ops - 4

    def test_parallel_uses_multiple_rows(self):
        trace = trace_of(parallel_kernel(lanes=4, iterations=2))
        # Skip the li prologue; schedule from the loop body.
        loop_start = next(
            i for i, r in enumerate(trace) if r.op == "addi" and i > 4
        )
        unit = build_unit(trace, loop_start, FabricGeometry(rows=4, cols=32))
        assert unit is not None
        assert unit.used_rows >= 3

    def test_memory_kernel_is_memory_bound(self):
        trace = trace_of(memory_kernel(n_words=16, iterations=2))
        assert trace.memory_fraction() > 0.2

    def test_branchy_period_controls_misspeculation(self):
        from repro.dbt.translator import DBTLimits

        geometry = FabricGeometry(rows=2, cols=16)

        def run(period, monitor_launches=4):
            program = branchy_kernel(iterations=150, period=period)
            system = TransRecSystem(
                SystemParams(
                    geometry=geometry,
                    dbt=DBTLimits(
                        misspec_monitor_launches=monitor_launches
                    ),
                )
            )
            result = system.run_trace(trace_of(program))
            return result.cgra.misspeculations, result.cgra.launches

        unmonitored = 10**9
        # A 50%-duty branch diverges from any static recorded path on
        # roughly half of the launches that cross it, whatever the
        # flip period.
        for period in (2, 50):
            misses, launches = run(period, unmonitored)
            assert 0.2 * launches < misses < 0.7 * launches
        # The adaptive monitor exists exactly to curb that: it must
        # cut misspeculations by a large factor for both periods.
        for period in (2, 50):
            monitored, _ = run(period)
            raw, _ = run(period, unmonitored)
            assert monitored < raw / 2
