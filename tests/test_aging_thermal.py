"""Tests for the utilization-coupled thermal aging extension."""

import math

import numpy as np
import pytest

from repro.aging.nbti import NBTIModel
from repro.aging.thermal import (
    ThermalModel,
    thermal_lifetime_improvement,
    thermal_lifetime_map,
    thermal_lifetime_years,
)
from repro.errors import ConfigurationError


@pytest.fixture
def base():
    return NBTIModel()


@pytest.fixture
def thermal():
    return ThermalModel(ambient_k=320.0, max_rise_k=45.0)


class TestThermalModel:
    def test_temperature_interpolates(self, thermal):
        assert thermal.temperature(0.0) == 320.0
        assert thermal.temperature(1.0) == 365.0
        assert thermal.temperature(0.5) == pytest.approx(342.5)

    def test_temperature_map(self, thermal):
        util = np.array([[0.0, 1.0]])
        temps = thermal.temperature_map(util)
        assert temps[0, 0] == 320.0
        assert temps[0, 1] == 365.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThermalModel(ambient_k=0.0)
        with pytest.raises(ConfigurationError):
            ThermalModel(max_rise_k=-1.0)
        with pytest.raises(ValueError):
            ThermalModel().temperature(1.5)


class TestThermalLifetime:
    def test_full_stress_matches_fixed_t_calibration(self, base, thermal):
        """At u=1 the thermal model coincides with the fixed-T closed
        form (the calibration is anchored at worst-case temperature)."""
        assert thermal_lifetime_years(base, thermal, 1.0) == pytest.approx(
            base.reference_years
        )

    def test_cool_fus_outlive_fixed_t_model(self, base, thermal):
        """The double benefit: lower u means both less stress time and
        a cooler, slower-aging device."""
        fixed = base.years_to_degradation(0.4)
        coupled = thermal_lifetime_years(base, thermal, 0.4)
        assert coupled > fixed

    def test_zero_utilization_immortal(self, base, thermal):
        assert thermal_lifetime_years(base, thermal, 0.0) == math.inf

    def test_monotone_in_utilization(self, base, thermal):
        lifetimes = [
            thermal_lifetime_years(base, thermal, u)
            for u in (0.2, 0.4, 0.6, 0.8, 1.0)
        ]
        assert all(a > b for a, b in zip(lifetimes, lifetimes[1:]))

    def test_zero_rise_recovers_fixed_t(self, base):
        flat = ThermalModel(ambient_k=365.0, max_rise_k=0.0)
        assert thermal_lifetime_years(base, flat, 0.5) == pytest.approx(
            NBTIModel(temperature_k=365.0).years_to_degradation(0.5)
        )

    def test_lifetime_map_shape(self, base, thermal):
        util = np.array([[1.0, 0.5], [0.25, 0.0]])
        lifetimes = thermal_lifetime_map(base, thermal, util)
        assert lifetimes.shape == util.shape
        assert lifetimes[0, 0] == pytest.approx(3.0)
        assert lifetimes[1, 1] == math.inf


class TestThermalImprovement:
    def test_exceeds_fixed_t_improvement(self, base, thermal):
        """Balancing pays twice under thermal coupling, so the
        improvement must beat the fixed-T worst-util ratio."""
        baseline_worst, proposed_worst = 0.95, 0.45
        fixed_ratio = baseline_worst / proposed_worst
        coupled = thermal_lifetime_improvement(
            base, thermal, baseline_worst, proposed_worst
        )
        assert coupled > fixed_ratio

    def test_identity_when_nothing_changes(self, base, thermal):
        assert thermal_lifetime_improvement(
            base, thermal, 0.8, 0.8
        ) == pytest.approx(1.0)
